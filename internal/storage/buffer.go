package storage

import "container/list"

// DefaultItemsPerPage is the default clustering factor of items into pages.
const DefaultItemsPerPage = 10

// PageMap maps item identifiers to page identifiers.  The paper's simulator
// charges a disk access for operations that miss the buffer; pages are the
// unit of buffering.
type PageMap struct {
	itemsPerPage int
}

// NewPageMap returns a page map with the given clustering factor.
func NewPageMap(itemsPerPage int) PageMap {
	if itemsPerPage < 1 {
		itemsPerPage = 1
	}
	return PageMap{itemsPerPage: itemsPerPage}
}

// PageOf returns the page holding item i.
func (m PageMap) PageOf(item int) int { return item / m.itemsPerPage }

// ItemsPerPage returns the clustering factor.
func (m PageMap) ItemsPerPage() int { return m.itemsPerPage }

// NumPages returns the number of pages needed for n items.
func (m PageMap) NumPages(items int) int {
	return (items + m.itemsPerPage - 1) / m.itemsPerPage
}

// BufferPool is an LRU cache of pages.  Access returns whether the page was
// already resident (hit) and makes it resident, evicting the least recently
// used page when the pool is full.
type BufferPool struct {
	capacity int
	lru      *list.List
	pages    map[int]*list.Element

	hits   uint64
	misses uint64
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[int]*list.Element),
	}
}

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Access touches the page: it returns true if the page was resident, false if
// it had to be faulted in.  In both cases the page becomes the most recently
// used one.
func (b *BufferPool) Access(page int) bool {
	if el, ok := b.pages[page]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	if b.lru.Len() >= b.capacity {
		oldest := b.lru.Back()
		if oldest != nil {
			b.lru.Remove(oldest)
			delete(b.pages, oldest.Value.(int))
		}
	}
	b.pages[page] = b.lru.PushFront(page)
	return false
}

// Contains reports whether the page is resident without touching it.
func (b *BufferPool) Contains(page int) bool {
	_, ok := b.pages[page]
	return ok
}

// HitRatio returns the observed hit ratio.
func (b *BufferPool) HitRatio() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}

// Stats returns the raw hit and miss counters.
func (b *BufferPool) Stats() (hits, misses uint64) { return b.hits, b.misses }
