// Package storage implements the versioned item store used by the local
// database component.  The store is a fixed-size array of items (the paper's
// database has 10'000 items, Table 4).  Each item carries a version counter
// used by the certification step of the replicated database (first-updater
// wins), a page mapping (items are clustered into pages), and an LRU buffer
// pool that models which pages are memory-resident.
//
// The store is striped: items are partitioned over a fixed set of RWMutexes
// so that write sets touching disjoint stripes install concurrently.  The
// parallel apply scheduler guarantees that conflicting write sets are never
// installed at the same time; the stripes only have to serialise installs
// against concurrent readers and against installs that happen to share a
// stripe.
package storage

import (
	"fmt"
	"sync"
)

// ErrItemOutOfRange is returned when an item index does not exist.
var ErrItemOutOfRange = fmt.Errorf("storage: item out of range")

// Item is the value and version of a single database item.
type Item struct {
	Value   int64
	Version uint64
}

// Write is one item update of a write set, in the slice representation used
// by the apply hot path (sorted by Item, no map allocation or iteration-order
// nondeterminism).
type Write struct {
	Item  int
	Value int64
}

// numStripes is the number of lock stripes (power of two).
const numStripes = 64

// Store is a concurrency-safe, versioned, in-memory item store.
type Store struct {
	stripes [numStripes]sync.RWMutex
	items   []Item
}

// NewStore creates a store with n items, all initialised to value 0,
// version 0.
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	return &Store{items: make([]Item, n)}
}

func (s *Store) stripe(i int) *sync.RWMutex {
	return &s.stripes[i&(numStripes-1)]
}

// lockAll acquires every stripe (whole-store operations: snapshot, restore,
// reset).
func (s *Store) lockAll() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].Unlock()
	}
}

// NumItems returns the number of items in the store.
func (s *Store) NumItems() int {
	mu := &s.stripes[0]
	mu.RLock()
	n := len(s.items)
	mu.RUnlock()
	return n
}

// Read returns the current value and version of item i.  The bounds check
// happens under the stripe lock: Restore (which holds every stripe) may
// replace the items slice, so the slice header must not be read lock-free.
func (s *Store) Read(i int) (value int64, version uint64, err error) {
	if i < 0 {
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	mu := s.stripe(i)
	mu.RLock()
	if i >= len(s.items) {
		mu.RUnlock()
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	it := s.items[i]
	mu.RUnlock()
	return it.Value, it.Version, nil
}

// Version returns the current version of item i (0 if out of range).
func (s *Store) Version(i int) uint64 {
	if i < 0 {
		return 0
	}
	mu := s.stripe(i)
	mu.RLock()
	var v uint64
	if i < len(s.items) {
		v = s.items[i].Version
	}
	mu.RUnlock()
	return v
}

// Write installs a new value for item i and bumps its version, returning the
// new version.
func (s *Store) Write(i int, value int64) (uint64, error) {
	if i < 0 {
		return 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	mu := s.stripe(i)
	mu.Lock()
	if i >= len(s.items) {
		mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	s.items[i].Value = value
	s.items[i].Version++
	v := s.items[i].Version
	mu.Unlock()
	return v, nil
}

// WriteSet is the set of item updates installed by one transaction.
type WriteSet map[int]int64

// ApplyWriteSet installs all updates of ws and bumps the version of each
// written item.  Updates to the same item by different write sets are
// serialised by the item's stripe lock.  The write set is validated before
// anything is installed, so a write set with an out-of-range item is
// rejected without partial application.
func (s *Store) ApplyWriteSet(ws WriteSet) error {
	n := s.NumItems()
	for i := range ws {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
		}
	}
	for i, v := range ws {
		if err := s.writeOne(i, v); err != nil {
			return err
		}
	}
	return nil
}

// ApplyWrites installs one transaction's write set in the slice
// representation, bumping the version of each written item.  It is the
// allocation-free install path used by the parallel apply scheduler; writes
// must not contain duplicate items.  Validation-before-install matches
// ApplyWriteSet.
func (s *Store) ApplyWrites(writes []Write) error {
	n := s.NumItems()
	for _, w := range writes {
		if w.Item < 0 || w.Item >= n {
			return fmt.Errorf("%w: %d", ErrItemOutOfRange, w.Item)
		}
	}
	for _, w := range writes {
		if err := s.writeOne(w.Item, w.Value); err != nil {
			return err
		}
	}
	return nil
}

// writeOne installs a single update under its stripe lock, bounds-checking
// inside the lock so a concurrent Restore cannot race the slice header.
func (s *Store) writeOne(i int, v int64) error {
	if i < 0 {
		return fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	mu := s.stripe(i)
	mu.Lock()
	if i >= len(s.items) {
		mu.Unlock()
		return fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	s.items[i].Value = v
	s.items[i].Version++
	mu.Unlock()
	return nil
}

// Snapshot returns a deep copy of the store contents, used for state transfer
// when a recovering replica rejoins the group (checkpoint-based recovery in
// the dynamic crash no-recovery model).
func (s *Store) Snapshot() []Item {
	s.lockAll()
	defer s.unlockAll()
	cp := make([]Item, len(s.items))
	copy(cp, s.items)
	return cp
}

// Restore replaces the store contents with the given snapshot.  When the
// snapshot has the store's own size (the only case arising from state
// transfer between equally-sized replicas) the copy happens in place; a
// size-changing restore swaps the slice header, which is safe because every
// reader performs its bounds check under a stripe lock and Restore holds all
// stripes.
func (s *Store) Restore(snapshot []Item) {
	s.lockAll()
	defer s.unlockAll()
	if len(snapshot) == len(s.items) {
		copy(s.items, snapshot)
		return
	}
	s.items = make([]Item, len(snapshot))
	copy(s.items, snapshot)
}

// Reset sets every item back to value 0, version 0.
func (s *Store) Reset() {
	s.lockAll()
	defer s.unlockAll()
	for i := range s.items {
		s.items[i] = Item{}
	}
}

// Equal reports whether two stores hold identical values and versions.  It is
// used by the consistency checks of the integration tests (one-copy
// equivalence across replicas).
func (s *Store) Equal(other *Store) bool {
	if s == other {
		return true
	}
	a := s.Snapshot()
	b := other.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
