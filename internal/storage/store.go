// Package storage implements the versioned item store used by the local
// database component.  The store is a fixed-size array of items (the paper's
// database has 10'000 items, Table 4).  Each item keeps a short multi-version
// chain: every committed write appends a new version stamped with the
// store-wide apply sequence of its transaction (monotonic per replica) and
// with the item's certification version counter (first-updater wins).  The
// newest version is the committed state seen by the 2PL write path; read-only
// snapshots (Snap) read the newest version at or below their snapshot
// sequence without taking any item locks and never abort.  A watermark-driven
// garbage collector prunes chain prefixes no live snapshot can see.
//
// The store is striped: items are partitioned over a fixed set of RWMutexes
// so that write sets touching disjoint stripes install concurrently.  The
// parallel apply scheduler guarantees that conflicting write sets are never
// installed at the same time; the stripes only have to serialise installs
// against concurrent readers and against installs that happen to share a
// stripe.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrItemOutOfRange is returned when an item index does not exist.
var ErrItemOutOfRange = fmt.Errorf("storage: item out of range")

// ErrSnapshotTooOld is returned by Snap.Read after the snapshot's pin was
// evicted by the pin-age cap: the snapshot fell further behind the visible
// watermark than MaxPinAge sequences, its versions may have been pruned, and
// the reader must retry on a fresh snapshot.
var ErrSnapshotTooOld = fmt.Errorf("storage: snapshot too old")

// Item is the newest committed value and version of a single database item
// (the representation used by state-transfer checkpoints).
type Item struct {
	Value   int64
	Version uint64
}

// Write is one item update of a write set, in the slice representation used
// by the apply hot path (sorted by Item, no map allocation or iteration-order
// nondeterminism).
type Write struct {
	Item  int
	Value int64
}

// version is one entry of an item's multi-version chain.
type version struct {
	// seq is the store-wide apply sequence of the transaction that installed
	// this version; a snapshot at sequence S sees the newest version with
	// seq <= S.
	seq uint64
	// ver is the item's certification version counter after this write.
	ver   uint64
	value int64
}

// chain is the version history of one item, oldest first.  An empty chain is
// the implicit initial version {value 0, ver 0, seq 0}.
type chain struct {
	versions []version
}

// numStripes is the number of lock stripes (power of two).
const numStripes = 64

// Store is a concurrency-safe, multi-version, in-memory item store.
type Store struct {
	stripes [numStripes]sync.RWMutex
	items   []chain

	// seqMu guards the install-sequence bookkeeping.  Install sequences are
	// reserved per transaction (beginInstall) and may complete out of order
	// when disjoint write sets install in parallel; visible only advances
	// over a gap-free prefix, so a snapshot at sequence S observes every
	// transaction with sequence <= S in full — writes of a half-installed
	// transaction are never visible to snapshots.
	seqMu   sync.Mutex
	nextSeq uint64
	done    map[uint64]struct{}
	// visible is the watermark of the gap-free installed prefix; updates
	// happen under seqMu, reads are lock-free.
	visible atomic.Uint64

	// snapMu guards the live-snapshot registry (seq -> refcount).
	snapMu sync.Mutex
	snaps  map[uint64]int
	// pins caches the sorted live snapshot sequences ([]uint64) for the
	// lock-free garbage-collection check on the install hot path; it is
	// rebuilt under snapMu whenever the registry changes.
	pins atomic.Value

	// maxPinAge bounds how many sequences a pinned snapshot may trail the
	// visible watermark (0: unlimited).  When an install advances visible past
	// a pin's budget the pin is evicted — its reads fail with
	// ErrSnapshotTooOld instead of retaining unbounded version history.
	// pinFloor is the oldest snapshot sequence still honoured; evictions
	// counts evicted pins.
	maxPinAge atomic.Uint64
	pinFloor  atomic.Uint64
	evictions atomic.Uint64

	// pruned counts versions removed by the garbage collector.
	pruned atomic.Uint64
}

// NewStore creates a store with n items, all initialised to value 0,
// version 0.
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	return &Store{
		items: make([]chain, n),
		done:  make(map[uint64]struct{}),
		snaps: make(map[uint64]int),
	}
}

func (s *Store) stripe(i int) *sync.RWMutex {
	return &s.stripes[i&(numStripes-1)]
}

// lockAll acquires every stripe (whole-store operations: snapshot, restore,
// reset).
func (s *Store) lockAll() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].Unlock()
	}
}

// NumItems returns the number of items in the store.
func (s *Store) NumItems() int {
	mu := &s.stripes[0]
	mu.RLock()
	n := len(s.items)
	mu.RUnlock()
	return n
}

// --- install sequencing ---

// beginInstall reserves the next apply sequence for one transaction's writes.
func (s *Store) beginInstall() uint64 {
	s.seqMu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	s.seqMu.Unlock()
	return seq
}

// endInstall marks a reserved sequence fully installed and advances the
// visible prefix over completed sequences, evicting pins that fell past
// their age budget.
func (s *Store) endInstall(seq uint64) {
	s.seqMu.Lock()
	s.done[seq] = struct{}{}
	vis := s.visible.Load()
	for {
		if _, ok := s.done[vis+1]; !ok {
			break
		}
		delete(s.done, vis+1)
		vis++
	}
	s.visible.Store(vis)
	if age := s.maxPinAge.Load(); age != 0 && vis > age {
		if floor := vis - age; floor > s.pinFloor.Load() {
			if pins, _ := s.pins.Load().([]uint64); len(pins) > 0 && pins[0] < floor {
				s.evictPins(floor)
			}
		}
	}
	s.seqMu.Unlock()
}

// evictPins removes every pin older than floor from the registry (seqMu held;
// the seqMu→snapMu order matches AcquireSnapVal).  The floor is published
// BEFORE the shrunken pin list: a pruner that observes the smaller list can
// only free versions whose snapshots already fail the floor check, so an
// evicted Snap can never read a half-pruned chain as valid data.
func (s *Store) evictPins(floor uint64) {
	s.snapMu.Lock()
	s.pinFloor.Store(floor)
	old, _ := s.pins.Load().([]uint64)
	kept := make([]uint64, 0, len(old))
	for _, p := range old {
		if p >= floor {
			kept = append(kept, p)
			continue
		}
		s.evictions.Add(uint64(s.snaps[p]))
		delete(s.snaps, p)
	}
	s.pins.Store(kept)
	s.snapMu.Unlock()
}

// SetMaxPinAge bounds how many apply sequences a live snapshot may trail the
// visible watermark before it is evicted (0 disables the cap).  The knob is
// safe to change at runtime.
func (s *Store) SetMaxPinAge(age uint64) { s.maxPinAge.Store(age) }

// MaxPinAge returns the current pin-age cap (0: unlimited).
func (s *Store) MaxPinAge() uint64 { return s.maxPinAge.Load() }

// PinFloor returns the oldest snapshot sequence the store still honours;
// snapshots below it have been evicted and read ErrSnapshotTooOld.
func (s *Store) PinFloor() uint64 { return s.pinFloor.Load() }

// EvictedSnaps returns the cumulative number of snapshots evicted by the
// pin-age cap.
func (s *Store) EvictedSnaps() uint64 { return s.evictions.Load() }

// VisibleSeq returns the newest snapshot sequence: every transaction with an
// apply sequence at or below it is fully installed.
func (s *Store) VisibleSeq() uint64 { return s.visible.Load() }

// addPinLocked registers one snapshot sequence (snapMu held) and republishes
// the sorted pin list only when the sequence set actually changed.  Acquire
// sequences are monotonic (each is the visible watermark at acquire time), so
// a new sequence always appends at the tail — no sort needed.
func (s *Store) addPinLocked(seq uint64) {
	s.snaps[seq]++
	if s.snaps[seq] > 1 {
		return // set unchanged, another snapshot already pins this sequence
	}
	old, _ := s.pins.Load().([]uint64)
	pins := make([]uint64, len(old), len(old)+1)
	copy(pins, old)
	pins = append(pins, seq)
	// Defensive: keep sortedness even if a smaller sequence ever appears.
	for i := len(pins) - 1; i > 0 && pins[i] < pins[i-1]; i-- {
		pins[i], pins[i-1] = pins[i-1], pins[i]
	}
	s.pins.Store(pins)
}

// dropPinLocked deregisters one snapshot sequence (snapMu held).  A sequence
// already evicted by the pin-age cap is absent from the registry; releasing
// such a snapshot is a no-op.
func (s *Store) dropPinLocked(seq uint64) {
	n, ok := s.snaps[seq]
	if !ok {
		return
	}
	if n > 1 {
		s.snaps[seq] = n - 1
		return
	}
	delete(s.snaps, seq)
	old, _ := s.pins.Load().([]uint64)
	pins := make([]uint64, 0, len(old))
	for _, p := range old {
		if p != seq {
			pins = append(pins, p)
		}
	}
	s.pins.Store(pins)
}

// --- reads ---

// Read returns the newest committed value and version of item i.  The bounds
// check happens under the stripe lock: Restore (which holds every stripe) may
// replace the items slice, so the slice header must not be read lock-free.
func (s *Store) Read(i int) (value int64, ver uint64, err error) {
	if i < 0 {
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	mu := s.stripe(i)
	mu.RLock()
	if i >= len(s.items) {
		mu.RUnlock()
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	if vs := s.items[i].versions; len(vs) > 0 {
		v := vs[len(vs)-1]
		mu.RUnlock()
		return v.value, v.ver, nil
	}
	mu.RUnlock()
	return 0, 0, nil
}

// ReadAt returns the value and version of item i as visible to a snapshot at
// the given apply sequence: the newest version with seq <= at.  Versions the
// snapshot cannot see are protected from GC only for sequences obtained from
// a live Snap handle.
func (s *Store) ReadAt(i int, at uint64) (value int64, ver uint64, err error) {
	if i < 0 {
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	mu := s.stripe(i)
	mu.RLock()
	if i >= len(s.items) {
		mu.RUnlock()
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	vs := s.items[i].versions
	for k := len(vs) - 1; k >= 0; k-- {
		if vs[k].seq <= at {
			v := vs[k]
			mu.RUnlock()
			return v.value, v.ver, nil
		}
	}
	mu.RUnlock()
	// No version at or below the snapshot: the item still has its implicit
	// initial state at that sequence.
	return 0, 0, nil
}

// Version returns the newest committed version of item i (0 if out of range).
func (s *Store) Version(i int) uint64 {
	_, ver, err := s.Read(i)
	if err != nil {
		return 0
	}
	return ver
}

// ChainLen returns the current length of item i's version chain (0 if out of
// range); it is a GC observability hook for tests and stats.
func (s *Store) ChainLen(i int) int {
	if i < 0 {
		return 0
	}
	mu := s.stripe(i)
	mu.RLock()
	n := 0
	if i < len(s.items) {
		n = len(s.items[i].versions)
	}
	mu.RUnlock()
	return n
}

// PrunedVersions returns the cumulative number of versions removed by GC.
func (s *Store) PrunedVersions() uint64 { return s.pruned.Load() }

// --- writes ---

// appendLocked appends a new version to item i's chain (stripe already held),
// bumping the certification version counter, and opportunistically prunes the
// versions no live or future snapshot can reach.
func (s *Store) appendLocked(i int, value int64, seq uint64) {
	c := &s.items[i]
	var ver uint64
	if n := len(c.versions); n > 0 {
		ver = c.versions[n-1].ver
	}
	c.versions = append(c.versions, version{seq: seq, ver: ver + 1, value: value})
	s.pruneChainLocked(c)
}

// pruneChainLocked removes every version of the chain that no reader can
// reach (the item's stripe is held).  A version is reachable iff it is
//
//   - at or above the newest version with seq <= visible (what the latest
//     state and every future snapshot read), or
//   - the newest version with seq <= p for some live snapshot sequence p.
//
// Safety of the lock-free reads: visible is monotonic and is loaded BEFORE
// the pin list.  A snapshot missing from the loaded pin list must have
// registered after the list was published, which happened after our visible
// load — so its sequence is >= our visible bound and its version lies in the
// kept suffix.  A stale (larger) pin list only keeps more.
func (s *Store) pruneChainLocked(c *chain) {
	vs := c.versions
	if len(vs) <= 1 {
		return
	}
	vis := s.visible.Load()
	// kbase is the newest version every future snapshot can reach; the whole
	// suffix [kbase..] is kept.
	kbase := -1
	for k := len(vs) - 1; k >= 0; k-- {
		if vs[k].seq <= vis {
			kbase = k
			break
		}
	}
	if kbase <= 0 {
		return
	}
	pins, _ := s.pins.Load().([]uint64)
	// Merge walk: version k (< kbase) survives iff some pin p makes it the
	// newest version <= p, i.e. vs[k].seq <= p < vs[k+1].seq.
	w := 0
	pi := 0
	for k := 0; k < kbase; k++ {
		for pi < len(pins) && pins[pi] < vs[k].seq {
			pi++
		}
		if pi < len(pins) && pins[pi] < vs[k+1].seq {
			vs[w] = vs[k]
			w++
		}
	}
	if w == kbase {
		return
	}
	n := copy(vs[w:], vs[kbase:])
	c.versions = vs[:w+n]
	s.pruned.Add(uint64(kbase - w))
}

// GC sweeps every item chain once, returning the number of versions pruned by
// the sweep.  Installs already prune the chains they touch; the sweep exists
// for idle stores and for tests.
func (s *Store) GC() uint64 {
	before := s.pruned.Load()
	n := s.NumItems()
	for i := 0; i < n; i++ {
		mu := s.stripe(i)
		mu.Lock()
		if i < len(s.items) {
			s.pruneChainLocked(&s.items[i])
		}
		mu.Unlock()
	}
	return s.pruned.Load() - before
}

// Write installs a new value for item i as a single-item transaction and
// bumps its version, returning the new version.  Like ApplyWriteSet,
// concurrent writes to the SAME item must be ordered by the caller.
func (s *Store) Write(i int, value int64) (uint64, error) {
	if i < 0 {
		return 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	seq := s.beginInstall()
	mu := s.stripe(i)
	mu.Lock()
	if i >= len(s.items) {
		mu.Unlock()
		s.endInstall(seq)
		return 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	s.appendLocked(i, value, seq)
	v := s.items[i].versions[len(s.items[i].versions)-1].ver
	mu.Unlock()
	s.endInstall(seq)
	return v, nil
}

// WriteSet is the set of item updates installed by one transaction.
type WriteSet map[int]int64

// ApplyWriteSet installs all updates of ws as one transaction, appending a
// new version of each written item under a single apply sequence.  Write sets
// touching a common item must be ordered by the CALLER (the database layer's
// 2PL locks or the apply scheduler's conflict graph provide this): version
// chains append in call order, and a same-item install racing between another
// transaction's sequence reservation and its append would interleave the
// chains' sequence order.  The stripe locks only serialise chain mutation
// against concurrent readers and against installs of disjoint transactions
// sharing a stripe.  The write set is validated before anything is installed,
// so a write set with an out-of-range item is rejected without partial
// application.
func (s *Store) ApplyWriteSet(ws WriteSet) error {
	n := s.NumItems()
	for i := range ws {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
		}
	}
	seq := s.beginInstall()
	for i, v := range ws {
		s.writeOne(i, v, seq)
	}
	s.endInstall(seq)
	return nil
}

// ApplyWrites installs one transaction's write set in the slice
// representation, appending a new version of each written item under a single
// apply sequence.  It is the install path used by the parallel apply
// scheduler; writes must not contain duplicate items, and conflicting write
// sets must be ordered by the caller (see ApplyWriteSet).
// Validation-before-install matches ApplyWriteSet.
func (s *Store) ApplyWrites(writes []Write) error {
	n := s.NumItems()
	for _, w := range writes {
		if w.Item < 0 || w.Item >= n {
			return fmt.Errorf("%w: %d", ErrItemOutOfRange, w.Item)
		}
	}
	seq := s.beginInstall()
	for _, w := range writes {
		s.writeOne(w.Item, w.Value, seq)
	}
	s.endInstall(seq)
	return nil
}

// writeOne appends a single version under its stripe lock, bounds-checking
// inside the lock so a concurrent Restore cannot race the slice header.  A
// racing size-shrinking Restore makes the write a no-op; the write set was
// validated against the pre-restore size.
func (s *Store) writeOne(i int, v int64, seq uint64) {
	mu := s.stripe(i)
	mu.Lock()
	if i >= 0 && i < len(s.items) {
		s.appendLocked(i, v, seq)
	}
	mu.Unlock()
}

// --- snapshots (read-only transactions) ---

// Snap is a live read-only snapshot of the store: it reads the newest version
// of each item at or below its sequence, takes no item locks, and never
// aborts.  While a Snap is live the GC keeps every version it can see;
// Release it when done.  A Snap does not survive whole-store Restore/Reset
// (the crash model invalidates outstanding snapshots).
type Snap struct {
	s        *Store
	seq      uint64
	released bool
}

// AcquireSnap registers and returns a snapshot at the current visible
// sequence.  The sequence read and the registry insertion happen atomically
// under seqMu: an install that advances visible past the snapshot's sequence
// must either run before the read or observe the registered pin.
func (s *Store) AcquireSnap() *Snap {
	snap := s.AcquireSnapVal()
	return &snap
}

// AcquireSnapVal is AcquireSnap returning the handle by value, for callers
// that embed it (the database's read-transaction hot path allocates once for
// the transaction instead of twice).
func (s *Store) AcquireSnapVal() Snap {
	s.seqMu.Lock()
	seq := s.visible.Load()
	s.snapMu.Lock()
	s.addPinLocked(seq)
	s.snapMu.Unlock()
	s.seqMu.Unlock()
	return Snap{s: s, seq: seq}
}

// Seq returns the snapshot's apply sequence.
func (p *Snap) Seq() uint64 { return p.seq }

// Read returns the value and version of item i as of the snapshot, or
// ErrSnapshotTooOld when the snapshot was evicted by the pin-age cap.  The
// floor is checked AFTER the chain read: an eviction publishes the floor
// before the pruner can drop this snapshot's versions, so a read that passes
// the check is guaranteed to have seen an intact chain.
func (p *Snap) Read(i int) (int64, uint64, error) {
	v, ver, err := p.s.ReadAt(i, p.seq)
	if err == nil && p.seq < p.s.pinFloor.Load() {
		return 0, 0, fmt.Errorf("%w: snapshot seq %d evicted (floor %d, visible %d)",
			ErrSnapshotTooOld, p.seq, p.s.pinFloor.Load(), p.s.visible.Load())
	}
	return v, ver, err
}

// Release deregisters the snapshot, allowing GC to prune the versions only it
// could see.  Release is idempotent; like the reads, it must not be called
// concurrently with other methods of the same Snap.
func (p *Snap) Release() {
	if p.released {
		return
	}
	p.released = true
	s := p.s
	s.snapMu.Lock()
	s.dropPinLocked(p.seq)
	s.snapMu.Unlock()
}

// LiveSnaps returns the number of live (unreleased) snapshots.
func (s *Store) LiveSnaps() int {
	s.snapMu.Lock()
	n := 0
	for _, c := range s.snaps {
		n += c
	}
	s.snapMu.Unlock()
	return n
}

// --- whole-store operations (state transfer, crash model) ---

// Snapshot returns a deep copy of the newest committed state, used for state
// transfer when a recovering replica rejoins the group (checkpoint-based
// recovery in the dynamic crash no-recovery model).
func (s *Store) Snapshot() []Item {
	s.lockAll()
	defer s.unlockAll()
	cp := make([]Item, len(s.items))
	for i := range s.items {
		if vs := s.items[i].versions; len(vs) > 0 {
			v := vs[len(vs)-1]
			cp[i] = Item{Value: v.value, Version: v.ver}
		}
	}
	return cp
}

// Restore replaces the store contents with the given snapshot: every item's
// chain collapses to the single restored version, stamped with a fresh apply
// sequence.  Outstanding Snaps are invalidated (their reads see the implicit
// zero state below the restore point); the crash/state-transfer model never
// keeps read-only transactions alive across a restore.
func (s *Store) Restore(snapshot []Item) {
	seq := s.beginInstall()
	s.lockAll()
	if len(snapshot) != len(s.items) {
		s.items = make([]chain, len(snapshot))
	}
	for i := range s.items {
		it := snapshot[i]
		if it == (Item{}) {
			s.items[i].versions = nil
			continue
		}
		s.items[i].versions = append(s.items[i].versions[:0],
			version{seq: seq, ver: it.Version, value: it.Value})
	}
	s.unlockAll()
	s.endInstall(seq)
}

// MergeNewer merges a state-transfer snapshot into a live store: every item
// whose snapshot version is strictly newer than the store's newest version
// gets the snapshot copy appended as a fresh version (one new apply sequence
// covers the whole merge); all other items are untouched.  Unlike Restore it
// neither truncates version chains nor disturbs live snapshots, so it is safe
// against concurrent installs and readers — per item the higher version wins
// regardless of which write lands last, so a concurrently installed newer
// write can never be regressed by a stale snapshot.  Returns the number of
// items taken from the snapshot.
func (s *Store) MergeNewer(snapshot []Item) int {
	seq := s.beginInstall()
	s.lockAll()
	n := len(snapshot)
	if len(s.items) < n {
		n = len(s.items)
	}
	merged := 0
	for i := 0; i < n; i++ {
		it := snapshot[i]
		if it == (Item{}) {
			continue
		}
		vs := s.items[i].versions
		if len(vs) > 0 && vs[len(vs)-1].ver >= it.Version {
			continue
		}
		s.items[i].versions = append(vs, version{seq: seq, ver: it.Version, value: it.Value})
		merged++
	}
	s.unlockAll()
	s.endInstall(seq)
	return merged
}

// Reset sets every item back to value 0, version 0 and drops all version
// history.
func (s *Store) Reset() {
	seq := s.beginInstall()
	s.lockAll()
	for i := range s.items {
		s.items[i].versions = nil
	}
	s.unlockAll()
	s.endInstall(seq)
}

// Equal reports whether two stores hold identical newest values and versions.
// It is used by the consistency checks of the integration tests (one-copy
// equivalence across replicas).
func (s *Store) Equal(other *Store) bool {
	if s == other {
		return true
	}
	a := s.Snapshot()
	b := other.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
