// Package storage implements the versioned item store used by the local
// database component.  The store is a fixed-size array of items (the paper's
// database has 10'000 items, Table 4).  Each item carries a version counter
// used by the certification step of the replicated database (first-updater
// wins), a page mapping (items are clustered into pages), and an LRU buffer
// pool that models which pages are memory-resident.
package storage

import (
	"fmt"
	"sync"
)

// ErrItemOutOfRange is returned when an item index does not exist.
var ErrItemOutOfRange = fmt.Errorf("storage: item out of range")

// Item is the value and version of a single database item.
type Item struct {
	Value   int64
	Version uint64
}

// Store is a concurrency-safe, versioned, in-memory item store.
type Store struct {
	mu    sync.RWMutex
	items []Item
}

// NewStore creates a store with n items, all initialised to value 0,
// version 0.
func NewStore(n int) *Store {
	if n < 1 {
		n = 1
	}
	return &Store{items: make([]Item, n)}
}

// NumItems returns the number of items in the store.
func (s *Store) NumItems() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Read returns the current value and version of item i.
func (s *Store) Read(i int) (value int64, version uint64, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.items) {
		return 0, 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	it := s.items[i]
	return it.Value, it.Version, nil
}

// Version returns the current version of item i (0 if out of range).
func (s *Store) Version(i int) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.items) {
		return 0
	}
	return s.items[i].Version
}

// Write installs a new value for item i and bumps its version, returning the
// new version.
func (s *Store) Write(i int, value int64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.items) {
		return 0, fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
	}
	s.items[i].Value = value
	s.items[i].Version++
	return s.items[i].Version, nil
}

// WriteSet is the set of item updates installed by one transaction.
type WriteSet map[int]int64

// ApplyWriteSet installs all updates of ws atomically (with respect to other
// store operations) and bumps the version of each written item.
func (s *Store) ApplyWriteSet(ws WriteSet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ws {
		if i < 0 || i >= len(s.items) {
			return fmt.Errorf("%w: %d", ErrItemOutOfRange, i)
		}
	}
	for i, v := range ws {
		s.items[i].Value = v
		s.items[i].Version++
	}
	return nil
}

// Snapshot returns a deep copy of the store contents, used for state transfer
// when a recovering replica rejoins the group (checkpoint-based recovery in
// the dynamic crash no-recovery model).
func (s *Store) Snapshot() []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp := make([]Item, len(s.items))
	copy(cp, s.items)
	return cp
}

// Restore replaces the store contents with the given snapshot.
func (s *Store) Restore(snapshot []Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make([]Item, len(snapshot))
	copy(s.items, snapshot)
}

// Reset sets every item back to value 0, version 0.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.items {
		s.items[i] = Item{}
	}
}

// Equal reports whether two stores hold identical values and versions.  It is
// used by the consistency checks of the integration tests (one-copy
// equivalence across replicas).
func (s *Store) Equal(other *Store) bool {
	if s == other {
		return true
	}
	a := s.Snapshot()
	b := other.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
