package storage

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGCBoundedUnderPinnedReaderPressure is the GC-under-pressure contract: a
// slow reader pinning an old snapshot while a write storm hammers one item
// must NOT make the version chain grow with the storm.  Opportunistic pruning
// on install has to keep exactly the reachable set — the pinned version plus
// the visible suffix — so the retained chain stays O(pins), not O(writes).
func TestGCBoundedUnderPinnedReaderPressure(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.AcquireSnap()
	wantPinned, _, err := snap.Read(0)
	if err != nil {
		t.Fatal(err)
	}

	// One pin can make at most one old version reachable (the newest version
	// at or below the pin), plus the newest version at or below visible and
	// the in-flight append: the chain must never exceed 3 regardless of how
	// long the storm runs.
	const bound = 3
	for i := 0; i < 5000; i++ {
		if _, err := s.Write(0, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
		if n := s.ChainLen(0); n > bound {
			t.Fatalf("after %d storm writes the chain holds %d versions (bound %d): GC is not keeping up with a pinned reader", i+1, n, bound)
		}
		if i%500 == 0 {
			if v, _, err := snap.Read(0); err != nil || v != wantPinned {
				t.Fatalf("pinned snapshot drifted during the storm: value %d err %v, want %d", v, err, wantPinned)
			}
		}
	}

	// Releasing the pin and sweeping collapses the chain to the single
	// visible version.
	snap.Release()
	s.GC()
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain holds %d versions after release+GC, want 1", n)
	}
	if n := s.LiveSnaps(); n != 0 {
		t.Fatalf("%d live snapshots after release, want 0", n)
	}
}

// TestGCBoundScalesWithPins: with k snapshots pinned at distinct sequences
// the retained chain is bounded by k plus the visible suffix, and releasing
// pins releases their versions on the next prune.
func TestGCBoundScalesWithPins(t *testing.T) {
	s := NewStore(2)
	var snaps []*Snap
	const pins = 8
	for p := 0; p < pins; p++ {
		if _, err := s.Write(1, int64(p)); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s.AcquireSnap())
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Write(1, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.ChainLen(1); n > pins+2 {
		t.Fatalf("chain holds %d versions with %d pins (bound %d)", n, pins, pins+2)
	}
	// Each snapshot still reads its own version.
	for p, snap := range snaps {
		if v, _, err := snap.Read(1); err != nil || v != int64(p) {
			t.Fatalf("pin %d reads %d (err %v), want %d", p, v, err, p)
		}
	}
	for _, snap := range snaps[:pins/2] {
		snap.Release()
	}
	s.GC()
	if n := s.ChainLen(1); n > pins/2+2 {
		t.Fatalf("chain holds %d versions after releasing half the pins (bound %d)", n, pins/2+2)
	}
	for _, snap := range snaps[pins/2:] {
		snap.Release()
	}
	s.GC()
	if n := s.ChainLen(1); n != 1 {
		t.Fatalf("chain holds %d versions after releasing every pin, want 1", n)
	}
}

// TestGCBoundedUnderConcurrentReaders runs the storm with live concurrency:
// a writer hammering one item while readers continuously acquire, read and
// release snapshots.  Checks the bound loosely (concurrent acquisitions can
// legitimately pin a handful of recent sequences) and, more importantly,
// gives the race detector the interleavings that matter.
func TestGCBoundedUnderConcurrentReaders(t *testing.T) {
	s := NewStore(4)
	const readers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := s.AcquireSnap()
				a, _, err1 := snap.Read(0)
				b, _, err2 := snap.Read(0)
				snap.Release()
				if err1 != nil || err2 != nil || a != b {
					t.Errorf("snapshot read not repeatable: %d/%v vs %d/%v", a, err1, b, err2)
					return
				}
			}
		}()
	}
	const writes = 3000
	for i := 0; i < writes; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
		// Every concurrent reader can pin at most one sequence at a time.
		if n := s.ChainLen(0); n > readers+2 {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("chain holds %d versions under %d transient readers (bound %d)", n, readers, readers+2)
		}
	}
	stop.Store(true)
	wg.Wait()
	s.GC()
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain holds %d versions after the storm, want 1", n)
	}
}
