package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGCBoundedUnderPinnedReaderPressure is the GC-under-pressure contract: a
// slow reader pinning an old snapshot while a write storm hammers one item
// must NOT make the version chain grow with the storm.  Opportunistic pruning
// on install has to keep exactly the reachable set — the pinned version plus
// the visible suffix — so the retained chain stays O(pins), not O(writes).
func TestGCBoundedUnderPinnedReaderPressure(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.AcquireSnap()
	wantPinned, _, err := snap.Read(0)
	if err != nil {
		t.Fatal(err)
	}

	// One pin can make at most one old version reachable (the newest version
	// at or below the pin), plus the newest version at or below visible and
	// the in-flight append: the chain must never exceed 3 regardless of how
	// long the storm runs.
	const bound = 3
	for i := 0; i < 5000; i++ {
		if _, err := s.Write(0, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
		if n := s.ChainLen(0); n > bound {
			t.Fatalf("after %d storm writes the chain holds %d versions (bound %d): GC is not keeping up with a pinned reader", i+1, n, bound)
		}
		if i%500 == 0 {
			if v, _, err := snap.Read(0); err != nil || v != wantPinned {
				t.Fatalf("pinned snapshot drifted during the storm: value %d err %v, want %d", v, err, wantPinned)
			}
		}
	}

	// Releasing the pin and sweeping collapses the chain to the single
	// visible version.
	snap.Release()
	s.GC()
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain holds %d versions after release+GC, want 1", n)
	}
	if n := s.LiveSnaps(); n != 0 {
		t.Fatalf("%d live snapshots after release, want 0", n)
	}
}

// TestGCBoundScalesWithPins: with k snapshots pinned at distinct sequences
// the retained chain is bounded by k plus the visible suffix, and releasing
// pins releases their versions on the next prune.
func TestGCBoundScalesWithPins(t *testing.T) {
	s := NewStore(2)
	var snaps []*Snap
	const pins = 8
	for p := 0; p < pins; p++ {
		if _, err := s.Write(1, int64(p)); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s.AcquireSnap())
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Write(1, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.ChainLen(1); n > pins+2 {
		t.Fatalf("chain holds %d versions with %d pins (bound %d)", n, pins, pins+2)
	}
	// Each snapshot still reads its own version.
	for p, snap := range snaps {
		if v, _, err := snap.Read(1); err != nil || v != int64(p) {
			t.Fatalf("pin %d reads %d (err %v), want %d", p, v, err, p)
		}
	}
	for _, snap := range snaps[:pins/2] {
		snap.Release()
	}
	s.GC()
	if n := s.ChainLen(1); n > pins/2+2 {
		t.Fatalf("chain holds %d versions after releasing half the pins (bound %d)", n, pins/2+2)
	}
	for _, snap := range snaps[pins/2:] {
		snap.Release()
	}
	s.GC()
	if n := s.ChainLen(1); n != 1 {
		t.Fatalf("chain holds %d versions after releasing every pin, want 1", n)
	}
}

// TestGCBoundedUnderConcurrentReaders runs the storm with live concurrency:
// a writer hammering one item while readers continuously acquire, read and
// release snapshots.  Checks the bound loosely (concurrent acquisitions can
// legitimately pin a handful of recent sequences) and, more importantly,
// gives the race detector the interleavings that matter.
func TestGCBoundedUnderConcurrentReaders(t *testing.T) {
	s := NewStore(4)
	const readers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := s.AcquireSnap()
				a, _, err1 := snap.Read(0)
				b, _, err2 := snap.Read(0)
				snap.Release()
				if err1 != nil || err2 != nil || a != b {
					t.Errorf("snapshot read not repeatable: %d/%v vs %d/%v", a, err1, b, err2)
					return
				}
			}
		}()
	}
	const writes = 3000
	for i := 0; i < writes; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
		// Every concurrent reader can pin at most one sequence at a time.
		if n := s.ChainLen(0); n > readers+2 {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("chain holds %d versions under %d transient readers (bound %d)", n, readers, readers+2)
		}
	}
	stop.Store(true)
	wg.Wait()
	s.GC()
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain holds %d versions after the storm, want 1", n)
	}
}

// TestPinAgeCapEvictsSlowSnapshot: with a pin-age cap, a snapshot that trails
// the visible watermark by more than the cap is evicted — its reads fail with
// ErrSnapshotTooOld instead of silently retaining history — while a snapshot
// within its budget keeps reading its own version.
func TestPinAgeCapEvictsSlowSnapshot(t *testing.T) {
	s := NewStore(2)
	s.SetMaxPinAge(50)
	if _, err := s.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	snap := s.AcquireSnap() // pinned at sequence 1

	// Exactly at the budget (visible - seq == cap) the pin is still honoured.
	for i := 0; i < 50; i++ {
		if _, err := s.Write(0, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _, err := snap.Read(0); err != nil || v != 7 {
		t.Fatalf("snapshot within its age budget read %d, %v; want 7, nil", v, err)
	}

	// The next installs push the pin past the budget: evicted.
	for i := 0; i < 2; i++ {
		if _, err := s.Write(0, int64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := snap.Read(0); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("evicted snapshot read returned %v, want ErrSnapshotTooOld", err)
	}
	if n := s.EvictedSnaps(); n != 1 {
		t.Fatalf("EvictedSnaps = %d, want 1", n)
	}
	if n := s.LiveSnaps(); n != 0 {
		t.Fatalf("LiveSnaps = %d after eviction, want 0", n)
	}
	if f := s.PinFloor(); f <= snap.Seq() {
		t.Fatalf("PinFloor = %d, want > evicted seq %d", f, snap.Seq())
	}

	// Releasing an already-evicted snapshot is a harmless no-op, and a fresh
	// snapshot acquired afterwards reads normally.
	snap.Release()
	fresh := s.AcquireSnap()
	defer fresh.Release()
	if v, _, err := fresh.Read(0); err != nil || v != 201 {
		t.Fatalf("fresh snapshot read %d, %v; want 201, nil", v, err)
	}
}

// TestPinAgeCapBoundsChainUnderAbandonedPin: an abandoned (never-released)
// snapshot under a write storm retains history only until the cap evicts it;
// from then on the chain prunes back to the visible suffix, so one runaway
// analytic scan cannot hold memory proportional to the storm.
func TestPinAgeCapBoundsChainUnderAbandonedPin(t *testing.T) {
	s := NewStore(2)
	s.SetMaxPinAge(64)
	for i := 0; i < 10; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.AcquireSnap() // abandoned: never released

	for i := 0; i < 5000; i++ {
		if _, err := s.Write(0, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
		// Before eviction the pin legitimately keeps one old version (bound
		// 3); after eviction the chain must shrink back to the visible
		// suffix (bound 2).  The storm never exceeds the pre-eviction bound.
		if n := s.ChainLen(0); n > 3 {
			t.Fatalf("after %d storm writes the chain holds %d versions (bound 3)", i+1, n)
		}
	}
	if n := s.EvictedSnaps(); n != 1 {
		t.Fatalf("EvictedSnaps = %d, want 1", n)
	}
	if _, _, err := snap.Read(0); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("abandoned snapshot read returned %v, want ErrSnapshotTooOld", err)
	}
	if n := s.ChainLen(0); n > 2 {
		t.Fatalf("chain holds %d versions after eviction (bound 2)", n)
	}
}

// TestPinAgeCapSharedSequenceRefcount: several snapshots sharing one pinned
// sequence are evicted together and each counts in EvictedSnaps.
func TestPinAgeCapSharedSequenceRefcount(t *testing.T) {
	s := NewStore(2)
	s.SetMaxPinAge(8)
	if _, err := s.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	a, b := s.AcquireSnap(), s.AcquireSnap()
	for i := 0; i < 20; i++ {
		if _, err := s.Write(0, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, snap := range []*Snap{a, b} {
		if _, _, err := snap.Read(0); !errors.Is(err, ErrSnapshotTooOld) {
			t.Fatalf("shared-sequence snapshot read returned %v, want ErrSnapshotTooOld", err)
		}
	}
	if n := s.EvictedSnaps(); n != 2 {
		t.Fatalf("EvictedSnaps = %d, want 2", n)
	}
}
