package storage

import (
	"math/rand"
	"testing"
)

func TestPageMap(t *testing.T) {
	m := NewPageMap(10)
	if m.PageOf(0) != 0 || m.PageOf(9) != 0 || m.PageOf(10) != 1 || m.PageOf(105) != 10 {
		t.Fatal("page mapping wrong")
	}
	if m.ItemsPerPage() != 10 {
		t.Fatalf("ItemsPerPage = %d", m.ItemsPerPage())
	}
	if m.NumPages(10000) != 1000 {
		t.Fatalf("NumPages(10000) = %d", m.NumPages(10000))
	}
	if m.NumPages(101) != 11 {
		t.Fatalf("NumPages(101) = %d", m.NumPages(101))
	}
	if NewPageMap(0).ItemsPerPage() != 1 {
		t.Fatal("clustering factor should clamp to 1")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	b := NewBufferPool(2)
	if b.Access(1) {
		t.Fatal("first access should miss")
	}
	if !b.Access(1) {
		t.Fatal("second access should hit")
	}
	if b.Access(2) {
		t.Fatal("new page should miss")
	}
	if b.Access(3) {
		t.Fatal("new page should miss")
	}
	// Page 1 is now the LRU victim (order of recency: 3, 2).
	if b.Contains(1) {
		t.Fatal("page 1 should have been evicted")
	}
	if !b.Contains(2) || !b.Contains(3) {
		t.Fatal("pages 2 and 3 should be resident")
	}
	if b.Len() != 2 || b.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d", b.Len(), b.Capacity())
	}
	hits, misses := b.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if b.HitRatio() != 0.25 {
		t.Fatalf("hit ratio = %v", b.HitRatio())
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	b := NewBufferPool(3)
	b.Access(1)
	b.Access(2)
	b.Access(3)
	b.Access(1) // 1 becomes MRU; 2 is LRU
	b.Access(4) // evicts 2
	if b.Contains(2) {
		t.Fatal("LRU page 2 should have been evicted")
	}
	if !b.Contains(1) || !b.Contains(3) || !b.Contains(4) {
		t.Fatal("wrong eviction victim")
	}
}

func TestBufferPoolMinCapacity(t *testing.T) {
	b := NewBufferPool(0)
	if b.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", b.Capacity())
	}
	if b.HitRatio() != 0 {
		t.Fatal("hit ratio of untouched pool should be 0")
	}
}

func TestBufferPoolSteadyStateHitRatio(t *testing.T) {
	// With a pool covering 20% of pages and uniform access, the steady-state
	// hit ratio approaches 20% — the Table 4 buffer-hit-ratio setting.
	const pages = 1000
	b := NewBufferPool(pages / 5)
	rng := rand.New(rand.NewSource(1))
	// Warm up.
	for i := 0; i < 5000; i++ {
		b.Access(rng.Intn(pages))
	}
	warmHits, warmMisses := b.Stats()
	for i := 0; i < 20000; i++ {
		b.Access(rng.Intn(pages))
	}
	hits, misses := b.Stats()
	ratio := float64(hits-warmHits) / float64((hits-warmHits)+(misses-warmMisses))
	if ratio < 0.17 || ratio > 0.23 {
		t.Fatalf("steady-state hit ratio %v, want ~0.20", ratio)
	}
}
