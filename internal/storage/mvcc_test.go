package storage

import (
	"sync"
	"testing"
)

func TestSnapRepeatableReads(t *testing.T) {
	s := NewStore(10)
	if err := s.ApplyWriteSet(WriteSet{1: 10, 2: 20}); err != nil {
		t.Fatal(err)
	}
	snap := s.AcquireSnap()
	defer snap.Release()

	if v, ver, err := snap.Read(1); err != nil || v != 10 || ver != 1 {
		t.Fatalf("snap read item 1 = %d (v%d), %v", v, ver, err)
	}
	// Overwrite after the snapshot: the snapshot must keep seeing the old
	// version, the store the new one.
	if err := s.ApplyWriteSet(WriteSet{1: 11, 3: 30}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := snap.Read(1); v != 10 {
		t.Fatalf("snap saw overwrite: %d", v)
	}
	if v, _, _ := snap.Read(3); v != 0 {
		t.Fatalf("snap saw item written after acquisition: %d", v)
	}
	if v, _, _ := s.Read(1); v != 11 {
		t.Fatalf("store read = %d, want 11", v)
	}
	// A second read of the same item returns the same value (repeatable).
	if v, _, _ := snap.Read(1); v != 10 {
		t.Fatal("snap read not repeatable")
	}
}

func TestSnapIgnoresHalfInstalledTransactions(t *testing.T) {
	s := NewStore(8)
	// Reserve a sequence and install only one of two writes: the visible
	// prefix must not advance, so a snapshot taken now sees neither write.
	seq := s.beginInstall()
	s.writeOne(1, 100, seq)

	snap := s.AcquireSnap()
	if v, _, _ := snap.Read(1); v != 0 {
		t.Fatalf("snapshot saw a write of a half-installed transaction: %d", v)
	}
	s.writeOne(2, 200, seq)
	s.endInstall(seq)
	// Still invisible to the old snapshot, visible to a fresh one.
	if v, _, _ := snap.Read(2); v != 0 {
		t.Fatalf("old snapshot saw post-acquisition commit: %d", v)
	}
	snap.Release()
	fresh := s.AcquireSnap()
	defer fresh.Release()
	if v, _, _ := fresh.Read(1); v != 100 {
		t.Fatalf("fresh snapshot missed committed write: %d", v)
	}
}

func TestSnapOutOfOrderInstallCompletion(t *testing.T) {
	s := NewStore(8)
	a := s.beginInstall() // earlier sequence
	b := s.beginInstall() // later sequence, completes first
	s.writeOne(2, 2, b)
	s.endInstall(b)
	// b is installed but a (an earlier sequence) is not: the prefix is not
	// gap-free, so nothing is visible yet.
	snap := s.AcquireSnap()
	if v, _, _ := snap.Read(2); v != 0 {
		t.Fatalf("snapshot saw commit beyond a sequence gap: %d", v)
	}
	snap.Release()
	s.writeOne(1, 1, a)
	s.endInstall(a)
	snap = s.AcquireSnap()
	defer snap.Release()
	if v, _, _ := snap.Read(1); v != 1 {
		t.Fatalf("item 1 = %d after gap closed", v)
	}
	if v, _, _ := snap.Read(2); v != 2 {
		t.Fatalf("item 2 = %d after gap closed", v)
	}
}

func TestGCNeverPrunesLiveSnapshotVersions(t *testing.T) {
	s := NewStore(4)
	if err := s.ApplyWriteSet(WriteSet{0: 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.AcquireSnap()
	defer snap.Release()

	// A storm of overwrites with a live snapshot pinned at version 1.
	for i := 2; i <= 200; i++ {
		if err := s.ApplyWriteSet(WriteSet{0: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.GC()
	if v, ver, err := snap.Read(0); err != nil || v != 1 || ver != 1 {
		t.Fatalf("GC pruned the snapshot's version: got %d (v%d), %v", v, ver, err)
	}
	if v, _, _ := s.Read(0); v != 200 {
		t.Fatal("latest version lost")
	}
	// The chain must retain the pinned version plus the tail, but must have
	// pruned the middle (it cannot hold all 200 versions).
	if n := s.ChainLen(0); n >= 200 || n < 2 {
		t.Fatalf("chain length = %d, want pruned but >= 2", n)
	}

	// After release the chain collapses to (at most a couple of) versions.
	snap.Release()
	if pruned := s.GC(); pruned == 0 {
		t.Fatal("release did not unpin any version")
	}
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain length after release+GC = %d, want 1", n)
	}
	if v, _, _ := s.Read(0); v != 200 {
		t.Fatal("GC pruned the newest version")
	}
}

func TestGCWatermarkTracksOldestSnapshot(t *testing.T) {
	s := NewStore(2)
	_ = s.ApplyWriteSet(WriteSet{0: 1})
	old := s.AcquireSnap()
	_ = s.ApplyWriteSet(WriteSet{0: 2})
	young := s.AcquireSnap()
	_ = s.ApplyWriteSet(WriteSet{0: 3})

	s.GC()
	if v, _, _ := old.Read(0); v != 1 {
		t.Fatalf("old snapshot = %d, want 1", v)
	}
	if v, _, _ := young.Read(0); v != 2 {
		t.Fatalf("young snapshot = %d, want 2", v)
	}

	// Releasing the old snapshot allows its version (only) to be pruned.
	old.Release()
	s.GC()
	if v, _, _ := young.Read(0); v != 2 {
		t.Fatal("pruning the old snapshot's version hit the young snapshot")
	}
	young.Release()
	s.GC()
	if n := s.ChainLen(0); n != 1 {
		t.Fatalf("chain length = %d after all snapshots released", n)
	}
}

func TestSnapConcurrentWriteStorm(t *testing.T) {
	s := NewStore(64)
	for i := 0; i < 64; i++ {
		if _, err := s.Write(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.ApplyWriteSet(WriteSet{(w*13 + i) % 64: int64(1000 + i)})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 50; k++ {
				snap := s.AcquireSnap()
				// Within one snapshot every double-read must agree.
				for i := 0; i < 64; i++ {
					v1, ver1, err1 := snap.Read(i)
					v2, ver2, err2 := snap.Read(i)
					if err1 != nil || err2 != nil || v1 != v2 || ver1 != ver2 {
						t.Errorf("non-repeatable snapshot read: item %d %d/%d v%d/v%d (%v/%v)",
							i, v1, v2, ver1, ver2, err1, err2)
						snap.Release()
						return
					}
				}
				snap.Release()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if got := s.LiveSnaps(); got != 0 {
		t.Fatalf("live snapshots leaked: %d", got)
	}
}

func TestRestoreCollapsesChainsAndKeepsVersions(t *testing.T) {
	a := NewStore(4)
	_ = a.ApplyWriteSet(WriteSet{0: 1, 1: 10})
	_ = a.ApplyWriteSet(WriteSet{0: 2})
	b := NewStore(4)
	b.Restore(a.Snapshot())
	if !a.Equal(b) {
		t.Fatal("restore lost state")
	}
	if v, ver, _ := b.Read(0); v != 2 || ver != 2 {
		t.Fatalf("restored item 0 = %d (v%d)", v, ver)
	}
	// Restored chains are single-version.
	if n := b.ChainLen(0); n != 1 {
		t.Fatalf("restored chain length = %d", n)
	}
	// New snapshots on the restored store see the restored state.
	snap := b.AcquireSnap()
	defer snap.Release()
	if v, _, _ := snap.Read(1); v != 10 {
		t.Fatalf("snapshot on restored store = %d", v)
	}
}
