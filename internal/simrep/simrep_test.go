package simrep

import (
	"strings"
	"testing"
	"time"

	"groupsafe/internal/core"
)

// shortConfig keeps unit-test runs fast while preserving the Table 4 resource
// model.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 20 * time.Second
	return cfg
}

func TestDefaultConfigMatchesTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Servers != 9 || cfg.ClientsPerServer != 4 || cfg.Items != 10000 {
		t.Fatalf("population parameters wrong: %+v", cfg)
	}
	if cfg.CPUsPerServer != 2 || cfg.DisksPerServer != 2 {
		t.Fatalf("resource parameters wrong: %+v", cfg)
	}
	if cfg.MinOps != 10 || cfg.MaxOps != 20 || cfg.WriteProb != 0.5 || cfg.BufferHitRatio != 0.2 {
		t.Fatalf("workload parameters wrong: %+v", cfg)
	}
	if cfg.DiskAccessMin != 4*time.Millisecond || cfg.DiskAccessMax != 12*time.Millisecond {
		t.Fatalf("disk parameters wrong: %+v", cfg)
	}
	if cfg.CPUPerIO != 400*time.Microsecond || cfg.NetworkDelay != 70*time.Microsecond || cfg.CPUPerNetworkOp != 70*time.Microsecond {
		t.Fatalf("CPU/network parameters wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Servers = 2 },
		func(c *Config) { c.ClientsPerServer = 0 },
		func(c *Config) { c.MinOps = 0 },
		func(c *Config) { c.MaxOps = c.MinOps - 1 },
		func(c *Config) { c.WriteProb = 1.5 },
		func(c *Config) { c.BufferHitRatio = -0.1 },
		func(c *Config) { c.DiskAccessMax = c.DiskAccessMin - 1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.WarmupFraction = 1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected a validation error", i)
		}
	}
	if _, err := Run(DefaultConfig(), core.GroupSafe, 0); err == nil {
		t.Error("zero load should be rejected")
	}
	bad := DefaultConfig()
	bad.Servers = 1
	if _, err := Run(bad, core.GroupSafe, 20); err == nil {
		t.Error("invalid config should be rejected by Run")
	}
}

func TestRunProducesSaneStatistics(t *testing.T) {
	cfg := shortConfig()
	res, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 200 {
		t.Fatalf("only %d transactions completed in 20 simulated seconds at 20 tps", res.Completed)
	}
	if res.Committed+res.Aborted != res.Completed {
		t.Fatalf("commit/abort accounting broken: %+v", res)
	}
	if res.ResponseMeanMs <= 0 || res.ResponseP95Ms < res.ResponseMeanMs {
		t.Fatalf("response statistics broken: %+v", res)
	}
	if res.ThroughputTPS < 15 || res.ThroughputTPS > 25 {
		t.Fatalf("throughput %v too far from offered load 20", res.ThroughputTPS)
	}
	if res.DiskUtilization <= 0 || res.DiskUtilization > 1 {
		t.Fatalf("disk utilization out of range: %v", res.DiskUtilization)
	}
	if res.NetworkUtilization <= 0 || res.NetworkUtilization > 0.2 {
		t.Fatalf("the 100 Mb/s LAN should be lightly loaded, got %v", res.NetworkUtilization)
	}
	if res.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 10 * time.Second
	a, err := Run(cfg, core.Group1Safe, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, core.Group1Safe, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.ResponseMeanMs != b.ResponseMeanMs || a.Aborted != b.Aborted {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestFigure9ShapeLowLoad(t *testing.T) {
	// At 20 tps (the left edge of Fig. 9) the ordering of the three curves
	// must match the paper: group-safe fastest, lazy in between, group-1-safe
	// slowest.
	cfg := shortConfig()
	results := map[core.SafetyLevel]Result{}
	for _, level := range Figure9Levels() {
		r, err := Run(cfg, level, 20)
		if err != nil {
			t.Fatal(err)
		}
		results[level] = r
	}
	gs := results[core.GroupSafe].ResponseMeanMs
	lazy := results[core.Safety1Lazy].ResponseMeanMs
	g1s := results[core.Group1Safe].ResponseMeanMs
	if !(gs < lazy) {
		t.Fatalf("at 20 tps group-safe (%.1f ms) should beat lazy (%.1f ms)", gs, lazy)
	}
	if !(lazy < g1s) {
		t.Fatalf("at 20 tps lazy (%.1f ms) should beat group-1-safe (%.1f ms)", lazy, g1s)
	}
	// The group-safe gain comes from taking the disk force and the writes out
	// of the response path: the gap to group-1-safe must be tens of
	// milliseconds, not noise.
	if g1s-gs < 20 {
		t.Fatalf("group-1-safe (%.1f ms) should be far slower than group-safe (%.1f ms)", g1s, gs)
	}
}

func TestGroupSafeDegradesUnderHighLoad(t *testing.T) {
	// The right edge of Fig. 9: group-safe loses its advantage as the system
	// saturates (the paper's crossover is around 38 tps).
	cfg := shortConfig()
	low, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(cfg, core.GroupSafe, 40)
	if err != nil {
		t.Fatal(err)
	}
	if high.ResponseMeanMs < 2*low.ResponseMeanMs {
		t.Fatalf("group-safe response should degrade sharply near saturation: %.1f ms at 20 tps, %.1f ms at 40 tps",
			low.ResponseMeanMs, high.ResponseMeanMs)
	}
	if high.DiskUtilization < 0.7 {
		t.Fatalf("disks should be near saturation at 40 tps, utilization = %v", high.DiskUtilization)
	}
}

func TestAbortRateSmallAndFromCertification(t *testing.T) {
	cfg := shortConfig()
	res, err := Run(cfg, core.GroupSafe, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted == 0 {
		t.Fatal("certification should abort at least some conflicting transactions")
	}
	if res.AbortRate > 0.25 {
		t.Fatalf("abort rate %v unreasonably high (paper reports ~7%%)", res.AbortRate)
	}
	// Lazy replication performs no certification, so it never aborts.
	lazyRes, err := Run(cfg, core.Safety1Lazy, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lazyRes.Aborted != 0 {
		t.Fatalf("lazy replication should not abort, got %d", lazyRes.Aborted)
	}
}

func TestExtensionLevels(t *testing.T) {
	// The 2-safe and very-safe extensions must be strictly slower than
	// group-safe (they add forced logs and extra synchronisation), and 0-safe
	// must be the fastest of the non-broadcast levels.
	cfg := shortConfig()
	cfg.Duration = 10 * time.Second
	load := 20.0
	get := func(level core.SafetyLevel) float64 {
		r, err := Run(cfg, level, load)
		if err != nil {
			t.Fatal(err)
		}
		return r.ResponseMeanMs
	}
	gs := get(core.GroupSafe)
	twoSafe := get(core.Safety2)
	verySafe := get(core.VerySafe)
	zeroSafe := get(core.Safety0)
	lazy := get(core.Safety1Lazy)
	if twoSafe <= gs {
		t.Fatalf("2-safe (%.1f ms) should be slower than group-safe (%.1f ms)", twoSafe, gs)
	}
	if verySafe <= twoSafe {
		t.Fatalf("very-safe (%.1f ms) should be slower than 2-safe (%.1f ms)", verySafe, twoSafe)
	}
	if zeroSafe >= lazy {
		t.Fatalf("0-safe (%.1f ms) should be faster than lazy (%.1f ms): it skips the log force", zeroSafe, lazy)
	}
}

func TestRunFigure9AndCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	cfg := shortConfig()
	results, err := RunFigure9(cfg, []core.SafetyLevel{core.GroupSafe, core.Safety1Lazy}, []float64{20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	table := FormatFigure9(results)
	if !strings.Contains(table, "group-safe") || !strings.Contains(table, "load") {
		t.Fatalf("table rendering broken:\n%s", table)
	}
	// Group-safe wins at 20 tps; by 40 tps (past the paper's 38 tps
	// crossover) it no longer does.
	cross := CrossoverLoad(results, core.GroupSafe, core.Safety1Lazy)
	if cross == 0 {
		t.Log("warning: no crossover observed in the coarse sweep (acceptable for short runs)")
	} else if cross < 28 {
		t.Fatalf("crossover at %v tps is far below the paper's ~38 tps", cross)
	}
}

func TestCrossoverLoadHelper(t *testing.T) {
	results := []Result{
		{Level: core.GroupSafe, LoadTPS: 20, ResponseMeanMs: 50},
		{Level: core.Safety1Lazy, LoadTPS: 20, ResponseMeanMs: 100},
		{Level: core.GroupSafe, LoadTPS: 38, ResponseMeanMs: 300},
		{Level: core.Safety1Lazy, LoadTPS: 38, ResponseMeanMs: 250},
	}
	if got := CrossoverLoad(results, core.GroupSafe, core.Safety1Lazy); got != 38 {
		t.Fatalf("crossover = %v, want 38", got)
	}
	if got := CrossoverLoad(results[:2], core.GroupSafe, core.Safety1Lazy); got != 0 {
		t.Fatalf("no crossover expected, got %v", got)
	}
}

func TestFigure9Axes(t *testing.T) {
	loads := Figure9Loads()
	if loads[0] != 20 || loads[len(loads)-1] != 40 || len(loads) != 11 {
		t.Fatalf("loads = %v, want 20..40 in steps of 2", loads)
	}
	levels := Figure9Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestSimulatedActiveReplicationNeverAborts(t *testing.T) {
	cfg := shortConfig()
	cfg.Technique = core.TechActive
	// The zero level is promoted to group-safe, mirroring core.
	res, err := Run(cfg, core.Safety0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != core.GroupSafe || res.Technique != core.TechActive {
		t.Fatalf("result identity = %+v", res)
	}
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if res.Aborted != 0 {
		t.Fatalf("active replication aborted %d transactions", res.Aborted)
	}
	// Incompatible combination is rejected.
	if _, err := Run(cfg, core.Safety1Lazy, 20); err == nil {
		t.Fatal("active + 1-safe-lazy should be rejected")
	}
}

func TestSimulatedLazyPrimaryRunsUpdatesAtPrimary(t *testing.T) {
	cfg := shortConfig()
	cfg.Technique = core.TechLazyPrimary
	res, err := Run(cfg, core.Safety0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != core.Safety1Lazy || res.Technique != core.TechLazyPrimary {
		t.Fatalf("result identity = %+v", res)
	}
	if res.Completed == 0 || res.Committed == 0 {
		t.Fatalf("no committed transactions: %+v", res)
	}
	if _, err := Run(cfg, core.GroupSafe, 20); err == nil {
		t.Fatal("lazy-primary + group-safe should be rejected")
	}
}

// TestSimulatedActiveCostsMoreThanCertification pins the qualitative claim
// of the comparison papers: with the Table 4 long transactions, executing
// every operation at every server (active) is slower than shipping write
// sets (certification) at the same load.
func TestSimulatedActiveCostsMoreThanCertification(t *testing.T) {
	cfg := shortConfig()
	cert, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Technique = core.TechActive
	active, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	if active.ResponseMeanMs <= cert.ResponseMeanMs {
		t.Fatalf("active (%.1f ms) should be slower than certification (%.1f ms) on Table 4 transactions",
			active.ResponseMeanMs, cert.ResponseMeanMs)
	}
}

// TestPartitionedSimulation exercises the partitioned-keyspace model: the
// partitioned run must complete with sane statistics, stay deterministic, and
// agree byte-for-byte with the single-order model when Partitions is 0 or 1
// (both mean "one global total order", so nothing may change).
func TestPartitionedSimulation(t *testing.T) {
	cfg := shortConfig()
	cfg.Partitions = 4
	res, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 200 || res.Committed+res.Aborted != res.Completed {
		t.Fatalf("partitioned accounting broken: %+v", res)
	}
	if res.ThroughputTPS < 15 || res.ThroughputTPS > 25 {
		t.Fatalf("partitioned throughput %v too far from offered load 20", res.ThroughputTPS)
	}
	again, err := Run(cfg, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != again.Completed || res.ResponseMeanMs != again.ResponseMeanMs || res.Aborted != again.Aborted {
		t.Fatalf("partitioned run not deterministic:\n%+v\n%+v", res, again)
	}

	zero, one := shortConfig(), shortConfig()
	zero.Partitions, one.Partitions = 0, 1
	a, err := Run(zero, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(one, core.GroupSafe, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Partitions=0 and Partitions=1 must be the identical single-order model:\n%+v\n%+v", a, b)
	}
}

// TestPartitionedValidation pins the configuration surface: negative counts
// are rejected, and only the certification technique is modelled partitioned.
func TestPartitionedValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative partitions should be rejected")
	}
	for _, tech := range []core.TechniqueID{core.TechActive, core.TechLazyPrimary} {
		cfg := DefaultConfig()
		cfg.Partitions = 2
		cfg.Technique = tech
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "certification") {
			t.Errorf("%v with partitions should be rejected naming certification, got %v", tech, err)
		}
	}
}
