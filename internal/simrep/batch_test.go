package simrep

import (
	"testing"
	"time"

	"groupsafe/internal/core"
)

// TestBatchedSimulationCompletes runs the simulator with the batched
// broadcast stage and checks that transactions flow through it: the batcher
// must neither deadlock nor drop transactions, and the measured behaviour
// must stay in the same regime as the unbatched run.
func TestBatchedSimulationCompletes(t *testing.T) {
	base := DefaultConfig()
	base.Duration = 10 * time.Second

	unbatched, err := Run(base, core.GroupSafe, 30)
	if err != nil {
		t.Fatal(err)
	}

	batched := base
	batched.BatchSize = 8
	batched.BatchDelay = time.Millisecond
	got, err := Run(batched, core.GroupSafe, 30)
	if err != nil {
		t.Fatal(err)
	}

	if got.Completed == 0 || got.Committed == 0 {
		t.Fatalf("batched run completed nothing: %+v", got)
	}
	// Every generated transaction terminates: throughput tracks the offered
	// load in both runs (within slack for warm-up edges).
	if got.ThroughputTPS < 0.7*unbatched.ThroughputTPS {
		t.Fatalf("batched throughput %.1f tps collapsed vs unbatched %.1f tps", got.ThroughputTPS, unbatched.ThroughputTPS)
	}
	// Batching trades a bounded queueing delay for fewer network rounds; the
	// response time may shift but must stay the same order of magnitude.
	if got.ResponseMeanMs > 5*unbatched.ResponseMeanMs+5 {
		t.Fatalf("batched response %.1f ms blew up vs unbatched %.1f ms", got.ResponseMeanMs, unbatched.ResponseMeanMs)
	}
}

// TestBatchConfigValidation pins the knob validation.
func TestBatchConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchDelay = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative batch delay should be rejected")
	}
}
