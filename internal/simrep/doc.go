// Package simrep is the replicated-database performance simulator used to
// reproduce the evaluation of Sect. 6 of the paper (Fig. 9).  The paper's own
// numbers come from a discrete-event simulator (the authors' testbed is not
// available), so this package re-implements the same resource model on top of
// internal/sim: each server has two CPUs and two disks, the servers share a
// LAN, transactions are generated according to Table 4, and the three
// replication techniques (lazy / 1-safe, group-safe, group-1-safe — plus the
// 2-safe, very-safe and 0-safe extensions) are expressed as flows over those
// resources.
//
// Protocol flows (documented substitutions are listed in DESIGN.md):
//
//   - lazy (1-safe): the delegate executes reads and writes against its local
//     buffer (a disk access per buffer miss), forces its log, answers the
//     client, and only then propagates the write set to the other servers,
//     which install it asynchronously.
//   - group-1-safe (Fig. 2): the delegate executes reads and writes, atomic-
//     broadcasts the transaction, every server certifies and installs the
//     writes in delivery order, and the delegate answers the client only after
//     its own commit record is forced to disk.
//   - group-safe (Fig. 8): the delegate executes only the reads before the
//     broadcast; the client is answered as soon as the delivery order and the
//     certification outcome are known; writes and log forces happen
//     asynchronously, after the response.
//   - 2-safe: group-1-safe plus a forced write of the message to the group
//     communication log at the delegate before the response (end-to-end
//     atomic broadcast).
//   - very-safe: the response additionally waits until every server has
//     installed and forced the transaction.
//   - 0-safe: lazy without the log force in the response path.
//
// With Config.BatchSize > 1 the group-communication flows run through a
// batched broadcast stage: transactions queue at their delegate's sender,
// and everything that arrives within Config.BatchDelay (up to BatchSize)
// shares a single dissemination round and a single ordering round on the
// LAN — the simulator counterpart of the batched pipeline in
// internal/gcs/abcast.
package simrep
