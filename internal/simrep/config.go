package simrep

import (
	"fmt"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/tuning"
)

// Config is the simulator parameter set; the defaults reproduce Table 4 of
// the paper.
type Config struct {
	// Servers is the number of replica servers (Table 4: 9).
	Servers int
	// ClientsPerServer bounds the number of concurrently executing
	// transactions per delegate (Table 4: 4).
	ClientsPerServer int
	// Items is the number of items in the database (Table 4: 10'000).
	Items int
	// CPUsPerServer and DisksPerServer size the per-server resources
	// (Table 4: 2 and 2).
	CPUsPerServer  int
	DisksPerServer int
	// MinOps/MaxOps bound the transaction length (Table 4: 10–20), WriteProb
	// is the probability that an operation is a write (Table 4: 0.5).
	MinOps    int
	MaxOps    int
	WriteProb float64
	// ReadFraction is the fraction of transactions that are pure read-only
	// queries (they terminate at their delegate with no broadcast — the
	// query-vs-update workload axis).  Zero reproduces the Table 4 mix.
	ReadFraction float64
	// QueryMinOps/QueryMaxOps bound the keys-per-query of the read-only
	// transactions generated via ReadFraction (both zero: MinOps/MaxOps).
	QueryMinOps int
	QueryMaxOps int
	// BufferHitRatio is the probability that an operation finds its page in
	// the buffer and needs no disk access (Table 4: 0.2).
	BufferHitRatio float64
	// DiskAccessMin/Max is the duration of one disk access (Table 4: 4–12 ms).
	DiskAccessMin time.Duration
	DiskAccessMax time.Duration
	// CPUPerIO is the CPU time consumed by an I/O operation (Table 4: 0.4 ms).
	CPUPerIO time.Duration
	// NetworkDelay is the time one message or broadcast occupies the network
	// (Table 4: 0.07 ms); CPUPerNetworkOp is the CPU cost of a network
	// operation (Table 4: 0.07 ms).
	NetworkDelay    time.Duration
	CPUPerNetworkOp time.Duration
	// CertifyCPU is the CPU cost of certifying one transaction.
	CertifyCPU time.Duration
	// Technique selects the replication technique the servers model:
	// certification-based (the default; the group-communication levels run
	// the Fig. 2/8 certification flow), active replication (every server
	// executes the full transaction in delivery order, zero aborts), or
	// lazy primary-copy (all update transactions execute at server 0).
	Technique core.TechniqueID
	// Pipeline carries the shared tuning knobs (BatchSize, BatchDelay, Mode,
	// DelayCap, ApplyWorkers) mirroring core.ReplicaConfig; the simulator
	// reads ApplyWorkers 0 as its historical default of one install slot per
	// disk, and models the Adaptive batching mode delivery-clocked like the
	// real sender: an idle delegate broadcasts immediately and co-travellers
	// accumulate behind the in-flight round, flushing as one batch when the
	// round completes.  DelayCap is accepted but not modelled (it backstops
	// stalled rounds, which the simulated network cannot produce), and the
	// Sequencer knobs are accepted but not modelled (the simulated sequencer
	// is already a zero-latency oracle).  See the tuning package.
	tuning.Pipeline
	// Partitions hash-partitions the keyspace over that many independent
	// total orders (mirroring internal/partition): item i belongs to
	// partition i%Partitions, every server runs one in-order apply stage per
	// partition (sharing its CPUs, disks and install slots), and an update
	// whose write set spans several partitions pays an ordered two-phase
	// commit — per-partition certification votes plus a coordinator decide
	// broadcast on the response path.  0 or 1 keeps the single global order.
	// Only the certification technique is modelled partitioned.
	Partitions int
	// Duration is the simulated time during which transactions are generated.
	Duration time.Duration
	// WarmupFraction of Duration is discarded from the statistics.
	WarmupFraction float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns the Table 4 parameters with a 2-minute simulated run.
func DefaultConfig() Config {
	return Config{
		Servers:          9,
		ClientsPerServer: 4,
		Items:            10000,
		CPUsPerServer:    2,
		DisksPerServer:   2,
		MinOps:           10,
		MaxOps:           20,
		WriteProb:        0.5,
		BufferHitRatio:   0.2,
		DiskAccessMin:    4 * time.Millisecond,
		DiskAccessMax:    12 * time.Millisecond,
		CPUPerIO:         400 * time.Microsecond,
		NetworkDelay:     70 * time.Microsecond,
		CPUPerNetworkOp:  70 * time.Microsecond,
		CertifyCPU:       300 * time.Microsecond,
		Pipeline:         tuning.Pipe(1, 0, 0),
		Duration:         2 * time.Minute,
		WarmupFraction:   0.1,
		Seed:             1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Servers < 3 {
		return fmt.Errorf("simrep: at least 3 servers are required, got %d", c.Servers)
	}
	if c.ClientsPerServer < 1 || c.Items < 1 || c.CPUsPerServer < 1 || c.DisksPerServer < 1 {
		return fmt.Errorf("simrep: resource counts must be positive")
	}
	if c.MinOps < 1 || c.MaxOps < c.MinOps {
		return fmt.Errorf("simrep: invalid operation bounds [%d,%d]", c.MinOps, c.MaxOps)
	}
	if c.WriteProb < 0 || c.WriteProb > 1 || c.BufferHitRatio < 0 || c.BufferHitRatio > 1 {
		return fmt.Errorf("simrep: probabilities must be in [0,1]")
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("simrep: read fraction must be in [0,1]")
	}
	if (c.QueryMinOps != 0 || c.QueryMaxOps != 0) && (c.QueryMinOps < 1 || c.QueryMaxOps < c.QueryMinOps) {
		return fmt.Errorf("simrep: invalid query op bounds [%d,%d]", c.QueryMinOps, c.QueryMaxOps)
	}
	if c.DiskAccessMin <= 0 || c.DiskAccessMax < c.DiskAccessMin {
		return fmt.Errorf("simrep: invalid disk access times")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("simrep: duration must be positive")
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("simrep: warmup fraction must be in [0,1)")
	}
	if c.BatchDelay < 0 {
		return fmt.Errorf("simrep: batch delay must be non-negative")
	}
	if c.DelayCap < 0 {
		return fmt.Errorf("simrep: delay cap must be non-negative")
	}
	if c.Mode != tuning.FixedDelay && c.Mode != tuning.Adaptive {
		return fmt.Errorf("simrep: unknown batch mode %d", c.Mode)
	}
	if c.AckWindow < 0 || c.RotateEvery < 0 {
		return fmt.Errorf("simrep: sequencer knobs must be non-negative")
	}
	if c.ApplyWorkers < 0 {
		return fmt.Errorf("simrep: apply workers must be non-negative")
	}
	if c.Partitions < 0 {
		return fmt.Errorf("simrep: partitions must be non-negative")
	}
	if c.Partitions > 1 && c.Technique != core.TechCertification {
		return fmt.Errorf("simrep: partitioned operation is modelled for the certification technique only, got %v", c.Technique)
	}
	return nil
}

// Result summarises one simulation run (one technique at one offered load).
type Result struct {
	Level     core.SafetyLevel
	Technique core.TechniqueID
	// Seed is the configuration seed the run was driven by, carried into the
	// result so a surprising row can be replayed deterministically.
	Seed int64
	// LoadTPS is the offered load in transactions per second.
	LoadTPS float64
	// Completed, Committed and Aborted count terminated transactions after
	// warm-up.
	Completed uint64
	Committed uint64
	Aborted   uint64
	// Queries counts the completed read-only transactions (included in
	// Completed and Committed; they execute locally and never abort).
	Queries uint64
	// ResponseMeanMs / ResponseP95Ms are response-time statistics in
	// milliseconds (committed and aborted transactions alike, as observed by
	// the client).
	ResponseMeanMs float64
	ResponseP95Ms  float64
	// QueryMeanMs / UpdateMeanMs split the mean response time by transaction
	// class (zero when the class did not occur).
	QueryMeanMs  float64
	UpdateMeanMs float64
	// AbortRate is Aborted / Completed.
	AbortRate float64
	// ThroughputTPS is the measured completion rate.
	ThroughputTPS float64
	// DiskUtilization and NetworkUtilization are resource utilisations
	// averaged over servers.
	DiskUtilization    float64
	NetworkUtilization float64
}

// String renders one row of the Fig. 9 data set.
func (r Result) String() string {
	label := r.Level.String()
	if r.Technique != core.TechCertification {
		label = r.Technique.String()
	}
	return fmt.Sprintf("%-13s load=%5.1f tps  resp=%7.1f ms  p95=%7.1f ms  abort=%4.1f%%  thr=%5.1f tps  disk=%4.0f%%",
		label, r.LoadTPS, r.ResponseMeanMs, r.ResponseP95Ms, 100*r.AbortRate, r.ThroughputTPS, 100*r.DiskUtilization)
}
