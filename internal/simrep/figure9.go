package simrep

import (
	"fmt"
	"sort"
	"strings"

	"groupsafe/internal/core"
)

// Figure9Levels are the three techniques plotted in Fig. 9 of the paper.
func Figure9Levels() []core.SafetyLevel {
	return []core.SafetyLevel{core.GroupSafe, core.Safety1Lazy, core.Group1Safe}
}

// Figure9Loads is the load axis of Fig. 9: 20 to 40 transactions per second.
func Figure9Loads() []float64 {
	loads := make([]float64, 0, 11)
	for l := 20.0; l <= 40.0; l += 2 {
		loads = append(loads, l)
	}
	return loads
}

// RunFigure9 runs the full response-time-versus-load sweep for the given
// levels and loads (defaults to the paper's setting when nil).  When the
// configured technique constrains the safety level (active replication,
// lazy primary-copy), the default level list collapses to the technique's
// canonical level.
func RunFigure9(cfg Config, levels []core.SafetyLevel, loads []float64) ([]Result, error) {
	if levels == nil {
		switch cfg.Technique {
		case core.TechActive:
			levels = []core.SafetyLevel{core.GroupSafe}
		case core.TechLazyPrimary:
			levels = []core.SafetyLevel{core.Safety1Lazy}
		default:
			levels = Figure9Levels()
		}
	}
	if loads == nil {
		loads = Figure9Loads()
	}
	results := make([]Result, 0, len(levels)*len(loads))
	for _, level := range levels {
		for _, load := range loads {
			r, err := Run(cfg, level, load)
			if err != nil {
				return nil, fmt.Errorf("simrep: %v at %v tps: %w", level, load, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// CrossoverLoad returns the lowest load at which technique a becomes slower
// than technique b (0 when a stays faster over the whole sweep).  The paper
// reports a crossover of group-safe versus lazy replication at roughly 38 tps.
func CrossoverLoad(results []Result, a, b core.SafetyLevel) float64 {
	byLoad := map[float64]map[core.SafetyLevel]float64{}
	for _, r := range results {
		if byLoad[r.LoadTPS] == nil {
			byLoad[r.LoadTPS] = map[core.SafetyLevel]float64{}
		}
		byLoad[r.LoadTPS][r.Level] = r.ResponseMeanMs
	}
	loads := make([]float64, 0, len(byLoad))
	for l := range byLoad {
		loads = append(loads, l)
	}
	sort.Float64s(loads)
	for _, l := range loads {
		ra, okA := byLoad[l][a]
		rb, okB := byLoad[l][b]
		if okA && okB && ra > rb {
			return l
		}
	}
	return 0
}

// FormatFigure9 renders the sweep as the table behind Fig. 9: one row per
// load, one column per technique (mean response time in milliseconds).
func FormatFigure9(results []Result) string {
	levels := []core.SafetyLevel{}
	seen := map[core.SafetyLevel]bool{}
	byKey := map[string]Result{}
	loadSet := map[float64]bool{}
	for _, r := range results {
		if !seen[r.Level] {
			seen[r.Level] = true
			levels = append(levels, r.Level)
		}
		loadSet[r.LoadTPS] = true
		byKey[fmt.Sprintf("%v/%v", r.Level, r.LoadTPS)] = r
	}
	loads := make([]float64, 0, len(loadSet))
	for l := range loadSet {
		loads = append(loads, l)
	}
	sort.Float64s(loads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "load [tps]")
	for _, level := range levels {
		fmt.Fprintf(&b, "  %18s", level.String()+" [ms]")
	}
	fmt.Fprintf(&b, "  %14s\n", "abort rate")
	for _, load := range loads {
		fmt.Fprintf(&b, "%-12.0f", load)
		var abortRate float64
		for _, level := range levels {
			r, ok := byKey[fmt.Sprintf("%v/%v", level, load)]
			if !ok {
				fmt.Fprintf(&b, "  %18s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %18.1f", r.ResponseMeanMs)
			if level == core.GroupSafe {
				abortRate = r.AbortRate
			}
		}
		fmt.Fprintf(&b, "  %13.1f%%\n", 100*abortRate)
	}
	return b.String()
}
