package simrep

import (
	"fmt"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/sim"
	"groupsafe/internal/stats"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// Run simulates one replication technique at one offered load and returns its
// measured behaviour.  The safety level is canonicalised against the
// technique exactly like core.ReplicaConfig: active replication promotes the
// zero level to group-safe and rejects the lazy level; lazy primary-copy is
// inherently 1-safe.
func Run(cfg Config, level core.SafetyLevel, loadTPS float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if loadTPS <= 0 {
		return Result{}, fmt.Errorf("simrep: load must be positive, got %v", loadTPS)
	}
	level, err := core.CanonicalLevel(cfg.Technique, level)
	if err != nil {
		return Result{}, fmt.Errorf("simrep: %w", err)
	}
	s := newSimulation(cfg, level, loadTPS)
	s.run()
	return s.result(), nil
}

// simTxn is the simulator-side representation of one transaction.
type simTxn struct {
	id          uint64
	delegateIdx int
	ops         []workload.Op
	writeOps    []workload.Op
	readItems   []int
	readVers    map[int]uint64
	seq         uint64
	committed   bool
	start       time.Duration
	notify      *sim.Mailbox[bool]
	remaining   int // servers still installing (very-safe)
	// Partitioned operation: parts lists the write partitions this update
	// touches (always a single entry when Partitions <= 1), and partsLeft[i]
	// counts how many of them server i has yet to see delivered — the last
	// sub-delivery at a server is the point where the decision is complete
	// there and the install runs.
	parts     []int
	partsLeft []int
}

// server models one replica server: two CPUs, two disks, a client admission
// limit, the batched atomic-broadcast sender stage, and the in-order apply
// stages fed by the atomic broadcast — one per keyspace partition, all
// sharing the server's CPUs, disks and install slots (partitioned servers
// are co-located replicas of every partition, exactly like the process
// model of internal/partition).
type server struct {
	idx         int
	cpu         *sim.Resource
	disk        *sim.Resource
	clients     *sim.Resource
	bcastQueue  *sim.Mailbox[*simTxn]
	applyQueues []*sim.Mailbox[*simTxn]
	applySlots  *sim.Resource
}

type simulation struct {
	cfg   Config
	level core.SafetyLevel
	load  float64

	eng      *sim.Engine
	network  *sim.Resource
	servers  []*server
	versions []uint64
	gen      *workload.Generator

	batchSize  int
	batchDelay time.Duration
	// adaptive selects the delivery-clocked batching model: a delegate with
	// no round in flight sends immediately, and co-travellers accumulate only
	// behind the in-flight round (see batcher).  False means the fixed
	// BatchDelay co-traveller window.
	adaptive bool

	parts     int // keyspace partitions (>= 1), each its own total order
	nextSeqs  []uint64
	warmupEnd time.Duration
	genEnd    time.Duration

	responses *stats.Sample
	queryResp *stats.Sample
	updResp   *stats.Sample
	completed uint64
	committed uint64
	aborted   uint64
	queries   uint64
	lastDone  time.Duration
}

func newSimulation(cfg Config, level core.SafetyLevel, loadTPS float64) *simulation {
	eng := sim.NewEngine(cfg.Seed)
	s := &simulation{
		cfg:      cfg,
		level:    level,
		load:     loadTPS,
		eng:      eng,
		network:  sim.NewResource(eng, "lan", 1),
		versions: make([]uint64, cfg.Items),
		gen: workload.NewGenerator(workload.Config{
			Items:        cfg.Items,
			MinOps:       cfg.MinOps,
			MaxOps:       cfg.MaxOps,
			WriteProb:    cfg.WriteProb,
			ReadFraction: cfg.ReadFraction,
			QueryMinOps:  cfg.QueryMinOps,
			QueryMaxOps:  cfg.QueryMaxOps,
		}, cfg.Seed),
		warmupEnd: time.Duration(float64(cfg.Duration) * cfg.WarmupFraction),
		genEnd:    cfg.Duration,
		responses: stats.NewSample(),
		queryResp: stats.NewSample(),
		updResp:   stats.NewSample(),

		batchSize:  cfg.BatchSize,
		batchDelay: cfg.BatchDelay,
	}
	if s.batchSize < 1 {
		s.batchSize = 1
	}
	// Mirror abcast.New: zero BatchDelay with batching on means adaptive
	// idle-flush, not a hidden fixed stall.
	mode := cfg.Mode
	if s.batchSize > 1 && mode == tuning.FixedDelay && s.batchDelay <= 0 {
		mode = tuning.Adaptive
	}
	s.adaptive = mode == tuning.Adaptive
	applyWorkers := cfg.ApplyWorkers
	if applyWorkers <= 0 {
		applyWorkers = cfg.DisksPerServer
	}
	s.parts = cfg.Partitions
	if s.parts < 1 {
		s.parts = 1
	}
	s.nextSeqs = make([]uint64, s.parts)
	for i := 0; i < cfg.Servers; i++ {
		srv := &server{
			idx:        i,
			cpu:        sim.NewResource(eng, fmt.Sprintf("cpu-%d", i), cfg.CPUsPerServer),
			disk:       sim.NewResource(eng, fmt.Sprintf("disk-%d", i), cfg.DisksPerServer),
			clients:    sim.NewResource(eng, fmt.Sprintf("clients-%d", i), cfg.ClientsPerServer),
			bcastQueue: sim.NewMailbox[*simTxn](eng, fmt.Sprintf("bcast-%d", i)),
			applySlots: sim.NewResource(eng, fmt.Sprintf("applyslots-%d", i), applyWorkers),
		}
		for q := 0; q < s.parts; q++ {
			srv.applyQueues = append(srv.applyQueues,
				sim.NewMailbox[*simTxn](eng, fmt.Sprintf("apply-%d-%d", i, q)))
		}
		s.servers = append(s.servers, srv)
	}
	return s
}

func (s *simulation) run() {
	if s.level.UsesGroupCommunication() {
		for _, srv := range s.servers {
			srv := srv
			for q := 0; q < s.parts; q++ {
				q := q
				s.eng.Spawn(fmt.Sprintf("dispatcher-%d-%d", srv.idx, q), 0, func(p *sim.Process) {
					s.dispatcher(p, srv, q)
				})
			}
			if s.batchSize > 1 {
				s.eng.Spawn(fmt.Sprintf("batcher-%d", srv.idx), 0, func(p *sim.Process) {
					s.batcher(p, srv)
				})
			}
		}
	}
	s.eng.Spawn("generator", 0, s.generator)
	s.eng.Run(0)
}

// generator produces Poisson arrivals at the offered load, assigning delegate
// servers round-robin.
func (s *simulation) generator(p *sim.Process) {
	interarrival := time.Duration(float64(time.Second) / s.load)
	rr := 0
	for {
		p.Hold(sim.Exponential(s.eng.Rand(), interarrival))
		if p.Now() >= s.genEnd {
			return
		}
		delegate := rr % s.cfg.Servers
		rr++
		t := s.newTxn(delegate)
		// Lazy primary-copy: every update transaction executes at the
		// primary (server 0); only read-only work stays at its delegate.
		if s.cfg.Technique == core.TechLazyPrimary && len(t.writeOps) > 0 {
			t.delegateIdx = 0
		}
		s.eng.Spawn(fmt.Sprintf("txn-%d", t.id), 0, func(p *sim.Process) {
			s.runTxn(p, t)
		})
	}
}

func (s *simulation) newTxn(delegate int) *simTxn {
	w := s.gen.Next(0, delegate)
	t := &simTxn{
		id:          w.ID,
		delegateIdx: delegate,
		ops:         w.Ops,
		readItems:   w.ReadItems(),
		readVers:    make(map[int]uint64),
		notify:      sim.NewMailbox[bool](s.eng, "notify"),
		remaining:   s.cfg.Servers,
	}
	for _, op := range w.Ops {
		if op.Write {
			t.writeOps = append(t.writeOps, op)
		}
	}
	return t
}

// runTxn is the client/delegate flow of one transaction.
func (s *simulation) runTxn(p *sim.Process, t *simTxn) {
	srv := s.servers[t.delegateIdx]
	srv.clients.Acquire(p)
	t.start = p.Now()

	var committed bool
	switch {
	case s.cfg.Technique == core.TechActive:
		committed = s.runActive(p, t, srv)
	case s.level == core.Safety0 || s.level == core.Safety1Lazy:
		committed = s.runLocal(p, t, srv)
	default:
		committed = s.runReplicated(p, t, srv)
	}
	s.record(p.Now(), t, committed)
	srv.clients.Release()
}

// executeOps charges the CPU and (on a buffer miss) the disk for each
// operation.
func (s *simulation) executeOps(p *sim.Process, srv *server, ops []workload.Op) {
	for range ops {
		srv.cpu.Use(p, s.cfg.CPUPerIO)
		if !sim.Bernoulli(s.eng.Rand(), s.cfg.BufferHitRatio) {
			srv.disk.Use(p, s.diskAccess())
		}
	}
}

func (s *simulation) diskAccess() time.Duration {
	return sim.UniformDuration(s.eng.Rand(), s.cfg.DiskAccessMin, s.cfg.DiskAccessMax)
}

// runLocal is the lazy (1-safe) and 0-safe flow: everything happens at the
// delegate; propagation is asynchronous.
func (s *simulation) runLocal(p *sim.Process, t *simTxn, srv *server) bool {
	s.executeOps(p, srv, t.ops)
	if s.level == core.Safety1Lazy {
		// Force the commit record before answering the client.
		srv.disk.Use(p, s.diskAccess())
	}
	// Asynchronous propagation and remote installation, outside the response.
	// Remote log writes are group-committed (the paper runs all techniques
	// with the same logging setting), so no per-transaction force is charged
	// on the asynchronous path.
	if len(t.writeOps) > 0 {
		s.eng.Spawn(fmt.Sprintf("lazyprop-%d", t.id), 0, func(pp *sim.Process) {
			srv.cpu.Use(pp, time.Duration(s.cfg.Servers-1)*s.cfg.CPUPerNetworkOp)
			s.network.Use(pp, time.Duration(s.cfg.Servers-1)*s.cfg.NetworkDelay)
			for i, remote := range s.servers {
				if i == t.delegateIdx {
					continue
				}
				remote := remote
				s.eng.Spawn(fmt.Sprintf("lazyinstall-%d-%d", t.id, i), 0, func(ip *sim.Process) {
					// The background writer installs remote write sets with
					// bounded concurrency, like the apply stage of the
					// group-based techniques.
					remote.applySlots.Acquire(ip)
					s.installWrites(ip, remote, t)
					remote.applySlots.Release()
				})
			}
		})
	}
	return true
}

// runReplicated is the group-communication flow of Fig. 2 (group-1-safe,
// 2-safe, very-safe) and Fig. 8 (group-safe).
func (s *simulation) runReplicated(p *sim.Process, t *simTxn, srv *server) bool {
	// Execution phase at the delegate.  Fig. 8 (group-safe) executes only the
	// reads before the broadcast; Fig. 2 processes the whole transaction.
	// Read versions are sampled when each read executes, so the certification
	// conflict window spans the whole execution phase plus the broadcast.
	for _, op := range t.ops {
		if op.Write && s.level == core.GroupSafe {
			continue
		}
		srv.cpu.Use(p, s.cfg.CPUPerIO)
		if !sim.Bernoulli(s.eng.Rand(), s.cfg.BufferHitRatio) {
			srv.disk.Use(p, s.diskAccess())
		}
		if !op.Write {
			if _, seen := t.readVers[op.Item]; !seen {
				t.readVers[op.Item] = s.versions[op.Item]
			}
		}
	}
	// Read-only transactions terminate at the delegate.
	if len(t.writeOps) == 0 {
		return true
	}

	// Atomic broadcast.  With batching the transaction queues at the
	// delegate's sender stage and shares one broadcast round with its batch;
	// unbatched it pays a dissemination round plus an ordering round on the
	// shared LAN itself, with the per-message CPU cost at the delegate.
	if s.batchSize > 1 {
		srv.bcastQueue.Put(t)
		return t.notify.Get(p)
	}
	peers := time.Duration(s.cfg.Servers - 1)
	srv.cpu.Use(p, peers*s.cfg.CPUPerNetworkOp)
	s.network.Use(p, peers*s.cfg.NetworkDelay)
	s.network.Use(p, peers*s.cfg.NetworkDelay)
	s.orderAndEnqueue(t)

	// Wait for the response condition of the safety level, signalled by the
	// apply stage.
	return t.notify.Get(p)
}

// runActive is the active-replication flow: the delegate broadcasts the
// whole operation list without any local execution phase, and every server
// executes the transaction in delivery order (the dispatcher's active
// branch).  There is no certification and no aborts.
func (s *simulation) runActive(p *sim.Process, t *simTxn, srv *server) bool {
	// Read-only transactions execute at the delegate only.
	if len(t.writeOps) == 0 {
		s.executeOps(p, srv, t.ops)
		return true
	}
	if s.batchSize > 1 {
		srv.bcastQueue.Put(t)
		return t.notify.Get(p)
	}
	peers := time.Duration(s.cfg.Servers - 1)
	srv.cpu.Use(p, peers*s.cfg.CPUPerNetworkOp)
	s.network.Use(p, peers*s.cfg.NetworkDelay)
	s.network.Use(p, peers*s.cfg.NetworkDelay)
	s.orderAndEnqueue(t)
	return t.notify.Get(p)
}

// orderAndEnqueue fixes the delivery position of a broadcast transaction and
// hands it to every server's apply stage.  Certification is deterministic, so
// its outcome is computed once (every server reaches the same verdict);
// active replication has no certification step and commits everything.
//
// With a partitioned keyspace the write set decomposes into one sub-
// transaction per touched partition, each taking a position in its own
// partition's total order; the deterministic outcome stands in for the
// unanimous per-partition votes of the ordered 2PC (any failed vote aborts
// the whole transaction everywhere).
func (s *simulation) orderAndEnqueue(t *simTxn) {
	t.parts = s.writePartitions(t)
	t.partsLeft = make([]int, s.cfg.Servers)
	for i := range t.partsLeft {
		t.partsLeft[i] = len(t.parts)
	}
	s.nextSeqs[t.parts[0]]++
	t.seq = s.nextSeqs[t.parts[0]]
	if s.cfg.Technique == core.TechActive {
		t.committed = true
	} else {
		t.committed = s.certify(t)
	}
	for _, target := range s.servers {
		for _, q := range t.parts {
			target.applyQueues[q].Put(t)
		}
	}
}

// writePartitions lists the partitions owning the transaction's write set,
// coordinator (lowest id) first — the single partition 0 when the keyspace
// is unpartitioned.
func (s *simulation) writePartitions(t *simTxn) []int {
	if s.parts <= 1 {
		return []int{0}
	}
	seen := make(map[int]bool, 2)
	var parts []int
	for _, op := range t.writeOps {
		q := op.Item % s.parts
		if !seen[q] {
			seen[q] = true
			parts = append(parts, q)
		}
	}
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return parts
}

// batcher is the delegate's batched atomic-broadcast sender stage: the first
// queued transaction opens a batch window of BatchDelay, everything that
// arrived by its close (up to BatchSize) shares a single dissemination round
// and a single ordering round on the LAN — the O(3n) → O(3n/B) message
// reduction of the batched pipeline.
func (s *simulation) batcher(p *sim.Process, srv *server) {
	peers := time.Duration(s.cfg.Servers - 1)
	for {
		first := srv.bcastQueue.Get(p)
		batch := []*simTxn{first}
		take := func() {
			for len(batch) < s.batchSize {
				t, ok := srv.bcastQueue.TryGet()
				if !ok {
					return
				}
				batch = append(batch, t)
			}
		}
		// Like abcast.Broadcast, a full batch flushes immediately; only a
		// partial batch waits out the batch window for co-travellers.  (The
		// engine has no interruptible hold, so a batch that fills mid-window
		// still waits the remainder — an upper bound on the real latency.)
		take()
		if len(batch) < s.batchSize {
			if hold := s.coTravellerWindow(); hold > 0 {
				p.Hold(hold)
				take()
			}
		}
		srv.cpu.Use(p, peers*s.cfg.CPUPerNetworkOp)
		s.network.Use(p, peers*s.cfg.NetworkDelay)
		s.network.Use(p, peers*s.cfg.NetworkDelay)
		for _, t := range batch {
			s.orderAndEnqueue(t)
		}
	}
}

// coTravellerWindow is how long a partial batch waits for co-travellers.  In
// FixedDelay mode it is the configured BatchDelay.  In Adaptive mode it is
// zero: the real sender is delivery-clocked — a payload arriving with nothing
// in flight is sent immediately, and later arrivals buffer only until the
// in-flight round's own delivery drains the pipe.  The batcher process models
// that clock structurally: while it pays an in-flight round's CPU and network
// costs, arrivals accumulate in bcastQueue and the next loop iteration
// flushes them as one batch, so the round time itself is the batching window
// and an idle delegate never pays any window at all.  (The real sender's
// EWMA-derived backstop deadline exists only for stalled rounds — loss or a
// sequencer change — which the simulated resource holds cannot exhibit, so
// it is not modelled.)
func (s *simulation) coTravellerWindow() time.Duration {
	if s.adaptive {
		return 0
	}
	return s.batchDelay
}

// certify implements first-updater-wins certification against the logical
// database versions, and installs the version bumps of committed write sets.
func (s *simulation) certify(t *simTxn) bool {
	for item, ver := range t.readVers {
		if s.versions[item] != ver {
			return false
		}
	}
	for _, op := range t.writeOps {
		s.versions[op.Item]++
	}
	return true
}

// dispatcher is the per-server per-partition apply stage: it takes delivered
// transactions in the partition's total order, certifies them (CPU), signals
// the group-safe response, and hands the disk work to an installer bounded by
// the number of disks.  A cross-partition transaction is processed once per
// touched partition (each sub-transaction pays its own certification in its
// own order); the LAST sub-delivery at a server completes the decision there
// — at the delegate it additionally pays the coordinator's decide broadcast
// on the response path — and triggers the single install of the write set.
func (s *simulation) dispatcher(p *sim.Process, srv *server, part int) {
	for {
		t := srv.applyQueues[part].Get(p)
		srv.applySlots.Acquire(p)

		if s.cfg.Technique == core.TechActive {
			// Active replication: the decision is known at delivery (no
			// vote, no certification), so group-safe replies immediately;
			// the server then executes the whole transaction.
			if srv.idx == t.delegateIdx && s.level == core.GroupSafe {
				t.notify.Put(true)
			}
			txn, target := t, srv
			s.eng.Spawn(fmt.Sprintf("exec-%d-%d", t.id, srv.idx), 0, func(ip *sim.Process) {
				s.executeActive(ip, target, txn)
			})
			continue
		}

		srv.cpu.Use(p, s.cfg.CertifyCPU)
		t.partsLeft[srv.idx]--
		if t.partsLeft[srv.idx] > 0 {
			// A sub-transaction of a cross-partition update: this partition's
			// vote is certified and its order position fixed, but the decision
			// is incomplete at this server until the remaining partitions
			// deliver their sub-transactions.
			srv.applySlots.Release()
			continue
		}
		isDelegate := srv.idx == t.delegateIdx
		if isDelegate && len(t.parts) > 1 {
			// The ordered 2PC decide: the coordinator broadcasts the decision
			// record through its partition's order — a dissemination round
			// plus an ordering round on the shared LAN, paid on the response
			// path (the client cannot be answered before the commit point).
			peers := time.Duration(s.cfg.Servers - 1)
			srv.cpu.Use(p, peers*s.cfg.CPUPerNetworkOp)
			s.network.Use(p, peers*s.cfg.NetworkDelay)
			s.network.Use(p, peers*s.cfg.NetworkDelay)
		}
		if isDelegate {
			switch s.level {
			case core.GroupSafe:
				// Fig. 8: reply as soon as the decision is known.
				t.notify.Put(t.committed)
			default:
				if !t.committed {
					t.notify.Put(false)
				}
			}
		}
		if !t.committed {
			srv.applySlots.Release()
			continue
		}
		txn := t
		target := srv
		s.eng.Spawn(fmt.Sprintf("install-%d-%d", t.id, srv.idx), 0, func(ip *sim.Process) {
			s.installReplicated(ip, target, txn)
		})
	}
}

// installReplicated performs the disk work of one delivered transaction at
// one server and signals the level-specific completion events.  Background
// log writes are group-committed; only the forces that sit on a response path
// (the delegate's commit record for group-1-safe and 2-safe, the end-to-end
// message log, the very-safe per-server log) are charged individually.
func (s *simulation) installReplicated(p *sim.Process, srv *server, t *simTxn) {
	isDelegate := srv.idx == t.delegateIdx
	// End-to-end atomic broadcast forces the message to the group
	// communication log before processing it.
	if s.level.RequiresEndToEnd() {
		srv.disk.Use(p, s.diskAccess())
	}
	// Install the writes.  In the Fig. 2 flow the delegate already executed
	// its writes during the execution phase, so only the remote servers pay
	// for them here; in the Fig. 8 flow every server installs them now.
	if s.level == core.GroupSafe || !isDelegate {
		s.installWrites(p, srv, t)
	}
	// Force the records that gate a response.
	if isDelegate && (s.level == core.Group1Safe || s.level == core.Safety2) {
		srv.disk.Use(p, s.diskAccess())
	}
	if s.level == core.VerySafe {
		srv.disk.Use(p, s.diskAccess())
	}
	srv.applySlots.Release()

	if isDelegate && (s.level == core.Group1Safe || s.level == core.Safety2) {
		t.notify.Put(true)
	}
	if s.level == core.VerySafe {
		if !isDelegate {
			// Acknowledgement message back to the delegate.
			s.network.Use(p, s.cfg.NetworkDelay)
		}
		t.remaining--
		if t.remaining == 0 {
			t.notify.Put(true)
		}
	}
}

// executeActive performs one delivered transaction's full execution at one
// server under active replication: every server pays the CPU and disk of all
// operations (the technique's higher processing cost), then the
// level-specific response forces and completion events fire exactly as in
// installReplicated.
func (s *simulation) executeActive(p *sim.Process, srv *server, t *simTxn) {
	isDelegate := srv.idx == t.delegateIdx
	if s.level.RequiresEndToEnd() {
		srv.disk.Use(p, s.diskAccess())
	}
	s.executeOps(p, srv, t.ops)
	if isDelegate && (s.level == core.Group1Safe || s.level == core.Safety2) {
		srv.disk.Use(p, s.diskAccess())
	}
	if s.level == core.VerySafe {
		srv.disk.Use(p, s.diskAccess())
	}
	srv.applySlots.Release()

	if isDelegate && (s.level == core.Group1Safe || s.level == core.Safety2) {
		t.notify.Put(true)
	}
	if s.level == core.VerySafe {
		if !isDelegate {
			s.network.Use(p, s.cfg.NetworkDelay)
		}
		t.remaining--
		if t.remaining == 0 {
			t.notify.Put(true)
		}
	}
}

// installWrites charges the CPU and disk cost of installing a write set at
// one server.  Write-set installation happens off the response path and
// benefits from write caching (the paper: "writes of adjacent pages would
// also be scheduled together to maximise disk throughput"), modelled as a
// higher buffer-hit ratio for installs.
func (s *simulation) installWrites(p *sim.Process, srv *server, t *simTxn) {
	hit := s.cfg.BufferHitRatio + s.installHitBonus()
	for range t.writeOps {
		srv.cpu.Use(p, s.cfg.CPUPerIO)
		if !sim.Bernoulli(s.eng.Rand(), hit) {
			srv.disk.Use(p, s.diskAccess())
		}
	}
}

// installHitBonus is the additional buffer-hit probability enjoyed by
// write-set installation (write caching / read-modify-write locality).
func (s *simulation) installHitBonus() float64 { return 0.15 }

// record accounts one completed transaction.
func (s *simulation) record(now time.Duration, t *simTxn, committed bool) {
	if t.start < s.warmupEnd {
		return
	}
	s.completed++
	if committed {
		s.committed++
	} else {
		s.aborted++
	}
	s.responses.AddDuration(now - t.start)
	if len(t.writeOps) == 0 {
		s.queries++
		s.queryResp.AddDuration(now - t.start)
	} else {
		s.updResp.AddDuration(now - t.start)
	}
	if now > s.lastDone {
		s.lastDone = now
	}
}

func (s *simulation) result() Result {
	r := Result{
		Level:          s.level,
		Technique:      s.cfg.Technique,
		Seed:           s.cfg.Seed,
		LoadTPS:        s.load,
		Completed:      s.completed,
		Committed:      s.committed,
		Aborted:        s.aborted,
		Queries:        s.queries,
		ResponseMeanMs: s.responses.Mean(),
		ResponseP95Ms:  s.responses.Percentile(95),
		QueryMeanMs:    s.queryResp.Mean(),
		UpdateMeanMs:   s.updResp.Mean(),
	}
	if s.completed > 0 {
		r.AbortRate = float64(s.aborted) / float64(s.completed)
	}
	window := s.lastDone - s.warmupEnd
	if window > 0 {
		r.ThroughputTPS = float64(s.completed) / window.Seconds()
	}
	var disk float64
	for _, srv := range s.servers {
		disk += srv.disk.Utilization()
	}
	r.DiskUtilization = disk / float64(len(s.servers))
	r.NetworkUtilization = s.network.Utilization()
	return r
}
