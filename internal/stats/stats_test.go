package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(25); got != 2 {
		t.Fatalf("P25 = %v", got)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev(), want)
	}
	if s.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestSampleAddDuration(t *testing.T) {
	s := NewSample()
	s.AddDuration(250 * time.Millisecond)
	if s.Mean() != 250 {
		t.Fatalf("AddDuration should store milliseconds, got %v", s.Mean())
	}
}

func TestSampleConfidenceInterval(t *testing.T) {
	s := NewSample()
	if s.ConfidenceInterval95() != 0 {
		t.Fatal("CI of empty sample must be 0")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64()*10 + 100)
	}
	ci := s.ConfidenceInterval95()
	if ci <= 0 || ci > 2 {
		t.Fatalf("CI = %v, expected a small positive half-width", ci)
	}
	if math.Abs(s.Mean()-100) > 3*ci+1 {
		t.Fatalf("mean %v too far from 100", s.Mean())
	}
}

func TestPercentileProperties(t *testing.T) {
	// Property: percentiles are monotone in p and bounded by min/max.
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample()
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := s.Percentile(p1), s.Percentile(p2)
		return v1 <= v2+1e-9 && v1 >= s.Min()-1e-9 && v2 <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("commit")
	c.Inc("commit")
	c.Add("abort", 3)
	if c.Get("commit") != 2 || c.Get("abort") != 3 {
		t.Fatalf("counts = %d/%d", c.Get("commit"), c.Get("abort"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should be 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "abort" || names[1] != "commit" {
		t.Fatalf("names = %v", names)
	}
	if r := c.Ratio("abort", "commit"); math.Abs(r-0.6) > 1e-9 {
		t.Fatalf("ratio = %v", r)
	}
	if NewCounter().Ratio("a", "b") != 0 {
		t.Fatal("ratio of empty counters should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 5)
	h.Observe(0)
	h.Observe(9 * time.Millisecond)
	h.Observe(10 * time.Millisecond)
	h.Observe(49 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("buckets = %v %v %v", h.Bucket(0), h.Bucket(1), h.Bucket(4))
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets should read 0")
	}
	if h.NumBuckets() != 5 || h.BucketWidth() != 10*time.Millisecond {
		t.Fatal("histogram shape accessors wrong")
	}
}

func TestHistogramDefaults(t *testing.T) {
	h := NewHistogram(0, 0)
	if h.NumBuckets() != 1 || h.BucketWidth() != time.Millisecond {
		t.Fatalf("defaults not applied: %d buckets, width %v", h.NumBuckets(), h.BucketWidth())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput(time.Second)
	if tp.PerSecond() != 0 {
		t.Fatal("empty throughput should be 0")
	}
	for i := 1; i <= 10; i++ {
		tp.Record(time.Second + time.Duration(i)*100*time.Millisecond)
	}
	if tp.Completed() != 10 {
		t.Fatalf("completed = %d", tp.Completed())
	}
	if got := tp.PerSecond(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("rate = %v, want 10/s", got)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Sample("query").Add(1)
	b.Sample("query").Add(3)
	b.Sample("update").Add(10)
	if got := b.Sample("query").Mean(); got != 2 {
		t.Fatalf("query mean = %v", got)
	}
	if got := b.N(); got != 3 {
		t.Fatalf("N = %d", got)
	}
	classes := b.Classes()
	if len(classes) != 2 || classes[0] != "query" || classes[1] != "update" {
		t.Fatalf("classes = %v", classes)
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
}
