// Package stats provides the small statistics toolkit used by the benchmark
// harness and the performance simulator: response-time collectors,
// percentiles, histograms and throughput counters.
//
// Sample stores every observation so percentiles are exact rather than
// approximated — the data sets here (one simulated run, one benchmark
// iteration) are small enough that exactness beats a sketch.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates scalar observations (stored in full so that exact
// percentiles can be computed).
type Sample struct {
	values []float64
	sum    float64
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// AddDuration records a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var sq float64
	for _, v := range s.values {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// ConfidenceInterval95 returns the half-width of the 95% confidence interval
// of the mean (normal approximation).
func (s *Sample) ConfidenceInterval95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String renders a one-line summary.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N(), s.Mean(), s.Median(), s.Percentile(95), s.Max())
}

// Counter is a simple named event counter.
type Counter struct {
	counts map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]uint64)} }

// Inc increments the named counter by one.
func (c *Counter) Inc(name string) { c.counts[name]++ }

// Add increments the named counter by n.
func (c *Counter) Add(name string, n uint64) { c.counts[name] += n }

// Get returns the value of the named counter.
func (c *Counter) Get(name string) uint64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ratio returns counter a divided by the sum of a and b (0 when both are 0).
func (c *Counter) Ratio(a, b string) float64 {
	x, y := c.Get(a), c.Get(b)
	if x+y == 0 {
		return 0
	}
	return float64(x) / float64(x+y)
}

// Histogram is a fixed-bucket histogram over durations, used to visualise
// response-time distributions in the CLI tools.
type Histogram struct {
	bucketWidth time.Duration
	buckets     []uint64
	overflow    uint64
	count       uint64
}

// NewHistogram builds a histogram with n buckets of the given width.
func NewHistogram(bucketWidth time.Duration, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if bucketWidth <= 0 {
		bucketWidth = time.Millisecond
	}
	return &Histogram{bucketWidth: bucketWidth, buckets: make([]uint64, n)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count++
	idx := int(d / h.bucketWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Overflow returns the number of observations beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// NumBuckets returns the number of (non-overflow) buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketWidth returns the width of each bucket.
func (h *Histogram) BucketWidth() time.Duration { return h.bucketWidth }

// Throughput measures completed operations per second of (virtual or real)
// time.
type Throughput struct {
	completed uint64
	start     time.Duration
	end       time.Duration
}

// NewThroughput returns a throughput meter starting at the given time offset.
func NewThroughput(start time.Duration) *Throughput {
	return &Throughput{start: start, end: start}
}

// Record notes one completion at time now.
func (t *Throughput) Record(now time.Duration) {
	t.completed++
	if now > t.end {
		t.end = now
	}
}

// Completed returns the number of recorded completions.
func (t *Throughput) Completed() uint64 { return t.completed }

// PerSecond returns the completion rate.
func (t *Throughput) PerSecond() float64 {
	window := t.end - t.start
	if window <= 0 {
		return 0
	}
	return float64(t.completed) / window.Seconds()
}

// Breakdown groups observations by transaction class (typically "query" vs
// "update"), keeping one Sample and one completion counter per class, so
// per-class latency percentiles fall out of the same toolkit as the overall
// ones.  It is not safe for concurrent use; collect under the caller's lock
// like a plain Sample.
type Breakdown struct {
	classes map[string]*Sample
	order   []string
}

// NewBreakdown returns an empty per-class collector.
func NewBreakdown() *Breakdown {
	return &Breakdown{classes: make(map[string]*Sample)}
}

// Sample returns the sample of the given class, creating it on first use.
func (b *Breakdown) Sample(class string) *Sample {
	s, ok := b.classes[class]
	if !ok {
		s = NewSample()
		b.classes[class] = s
		b.order = append(b.order, class)
	}
	return s
}

// Classes returns the class names in first-observation order.
func (b *Breakdown) Classes() []string {
	out := make([]string, len(b.order))
	copy(out, b.order)
	return out
}

// N returns the total number of observations across classes.
func (b *Breakdown) N() int {
	n := 0
	for _, s := range b.classes {
		n += s.N()
	}
	return n
}

// String renders one summary line per class.
func (b *Breakdown) String() string {
	out := ""
	for _, class := range b.order {
		if out != "" {
			out += "\n"
		}
		out += fmt.Sprintf("%-8s %s", class, b.classes[class].String())
	}
	return out
}
