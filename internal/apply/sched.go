// Package apply implements the deterministic parallel apply scheduler of the
// replica pipeline.
//
// The replication protocols totally order transactions with atomic
// broadcast, but total *order* does not require total *serial execution*:
// two certified write sets that touch disjoint items can be installed
// concurrently with an outcome indistinguishable from installing them in
// delivery order.  The scheduler exploits exactly that freedom:
//
//   - certification stays serial and cheap (it happens before scheduling, in
//     strict sequence order, against a version overlay);
//   - the committed write sets of one drained batch are partitioned by their
//     item-conflict graph into waves: a task's wave is one more than the
//     deepest wave among the earlier tasks it conflicts with, so tasks in
//     the same wave are pairwise disjoint and a conflict chain spreads over
//     consecutive waves in delivery order;
//   - each wave installs concurrently on a bounded worker pool (workers
//     claim tasks from the wave with a single atomic fetch-add each — no
//     per-task channel traffic), with small waves run inline because
//     spawning workers would cost more than the installs.
//
// Because every item's updates are installed in delivery (= wave) order and
// version counters bump once per write regardless of interleaving, the final
// store state is byte-identical to a serial apply — the property the
// determinism tests assert for every worker count.  A fully conflicting
// batch degenerates into singleton waves, i.e. the plain serial loop with no
// scheduling overhead at all.
//
// A Scheduler is owned by a single apply goroutine and reuses its internal
// wave buffers across batches, so steady-state scheduling allocates nothing
// beyond the worker goroutines of large waves.
package apply

import (
	"runtime"
	"sync"
	"sync/atomic"

	"groupsafe/internal/storage"
)

// Scheduler installs batches of write sets concurrently while preserving
// per-item delivery order.  It is NOT safe for concurrent use: one scheduler
// belongs to one apply loop.
type Scheduler struct {
	workers int

	// Reusable per-batch wave state (see buildWaves).
	lastWriter map[int]int32 // item -> index of its latest writer in the batch
	level      []int32       // task -> wave number
	waveSize   []int32       // wave -> task count (then prefix offsets)
	waveCursor []int32       // counting-sort fill cursors
	waveTasks  []int32       // tasks bucketed by wave, delivery order inside
}

// New creates a scheduler with the given worker-pool bound.  workers <= 1
// yields a serial scheduler that installs write sets strictly in delivery
// order (the zero-overhead baseline).
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{
		workers:    workers,
		lastWriter: make(map[int]int32),
	}
}

// Workers returns the configured worker-pool bound.
func (s *Scheduler) Workers() int { return s.workers }

// EffectiveWorkers returns the worker-pool bound clamped to GOMAXPROCS — the
// parallelism Run will actually use, which callers should also use for any
// sibling fan-out (e.g. parallel payload decoding) so single-core machines
// never pay goroutine overhead for no gain.
func (s *Scheduler) EffectiveWorkers() int {
	if p := runtime.GOMAXPROCS(0); s.workers > p {
		return p
	}
	return s.workers
}

// Run installs the tasks of one batch, where tasks[i] is the write set of the
// i-th committed transaction in delivery order (each duplicate-free), by
// invoking install for every task index exactly once.  Disjoint tasks may be
// installed concurrently by up to Workers goroutines; tasks sharing an item
// are invoked in index order, never concurrently.  Run returns after every
// install returned, with the first install error (the remaining tasks are
// still installed so the batch's bookkeeping stays uniform).
func (s *Scheduler) Run(tasks [][]storage.Write, install func(i int) error) error {
	n := len(tasks)
	if n == 0 {
		return nil
	}
	// More workers than schedulable threads is pure overhead: on a
	// single-core runner the pool degrades to the serial loop, so a high
	// ApplyWorkers setting never regresses small machines.
	effWorkers := s.EffectiveWorkers()
	if effWorkers <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := install(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	waves := s.buildWaves(tasks)

	// A wave smaller than this runs inline: spawning workers costs more than
	// a handful of installs.
	minParallel := 2 * effWorkers

	var (
		errMu    sync.Mutex
		firstErr error
		noteErr  = func(err error) {
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}
	)
	for w := 0; w < waves; w++ {
		wave := s.waveTasks[s.waveSize[w]:s.waveSize[w+1]]
		if len(wave) < minParallel {
			for _, i := range wave {
				noteErr(install(int(i)))
			}
			continue
		}
		workers := effWorkers
		if workers > len(wave) {
			workers = len(wave)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := cursor.Add(1) - 1
					if k >= int64(len(wave)) {
						return
					}
					noteErr(install(int(wave[k])))
				}
			}()
		}
		wg.Wait()
	}
	return firstErr
}

// buildWaves assigns every task its conflict depth (wave) and buckets the
// task indices by wave with a stable counting sort, returning the number of
// waves.  All buffers are reused across batches.
func (s *Scheduler) buildWaves(tasks [][]storage.Write) int {
	n := len(tasks)
	if cap(s.level) < n {
		s.level = make([]int32, n)
		s.waveTasks = make([]int32, n)
	}
	s.level = s.level[:n]
	s.waveTasks = s.waveTasks[:n]
	clear(s.lastWriter)

	waves := int32(0)
	for i, writes := range tasks {
		lvl := int32(0)
		for _, w := range writes {
			if j, ok := s.lastWriter[w.Item]; ok && int(j) != i && s.level[j] >= lvl {
				lvl = s.level[j] + 1
			}
			s.lastWriter[w.Item] = int32(i)
		}
		s.level[i] = lvl
		if lvl+1 > waves {
			waves = lvl + 1
		}
	}

	// Counting sort by wave; waveSize becomes the prefix-offset table, so
	// wave w occupies waveTasks[waveSize[w]:waveSize[w+1]].
	if cap(s.waveSize) < int(waves)+1 {
		s.waveSize = make([]int32, waves+1)
	}
	s.waveSize = s.waveSize[:waves+1]
	for i := range s.waveSize {
		s.waveSize[i] = 0
	}
	for _, lvl := range s.level {
		if lvl+1 < int32(len(s.waveSize)) {
			s.waveSize[lvl+1]++
		}
	}
	for w := 1; w < len(s.waveSize); w++ {
		s.waveSize[w] += s.waveSize[w-1]
	}
	if cap(s.waveCursor) < len(s.waveSize) {
		s.waveCursor = make([]int32, len(s.waveSize))
	}
	s.waveCursor = s.waveCursor[:len(s.waveSize)]
	copy(s.waveCursor, s.waveSize)
	for i := 0; i < n; i++ {
		lvl := s.level[i]
		s.waveTasks[s.waveCursor[lvl]] = int32(i)
		s.waveCursor[lvl]++
	}
	return int(waves)
}
