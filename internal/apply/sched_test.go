package apply

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"groupsafe/internal/storage"
)

// forceParallelism raises GOMAXPROCS so the scheduler's worker pool engages
// even on single-core test runners (Run clamps workers to GOMAXPROCS).
func forceParallelism(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// randomBatch builds n write sets over items [0, span) with the given mean
// size; low span forces conflicts, high span keeps write sets mostly
// disjoint.
func randomBatch(rng *rand.Rand, n, span, meanSize int) [][]storage.Write {
	tasks := make([][]storage.Write, n)
	for i := range tasks {
		size := 1 + rng.Intn(2*meanSize)
		if size > span {
			size = span
		}
		seen := make(map[int]bool, size)
		ws := make([]storage.Write, 0, size)
		for len(ws) < size {
			item := rng.Intn(span)
			if seen[item] {
				continue
			}
			seen[item] = true
			ws = append(ws, storage.Write{Item: item, Value: rng.Int63()})
		}
		// Sorted by item, like decoded transaction payloads.
		for a := 1; a < len(ws); a++ {
			for b := a; b > 0 && ws[b].Item < ws[b-1].Item; b-- {
				ws[b], ws[b-1] = ws[b-1], ws[b]
			}
		}
		tasks[i] = ws
	}
	return tasks
}

// TestSchedulerDeterminism is the determinism property test of the parallel
// apply pipeline: across randomized conflicting workloads, installing a batch
// with 1, 4 and 16 workers must leave byte-identical store state (values and
// item versions) — the parallel schedule is observationally equivalent to a
// serial apply in delivery order.
func TestSchedulerDeterminism(t *testing.T) {
	forceParallelism(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		span := []int{8, 64, 4096}[trial%3] // heavy, medium, light conflicts
		tasks := randomBatch(rng, 1+rng.Intn(256), span, 6)

		var reference []storage.Item
		for _, workers := range []int{1, 4, 16} {
			store := storage.NewStore(span)
			sched := New(workers)
			// Run the batch several times through one scheduler to exercise
			// the graph-buffer reuse across batches (every run bumps the
			// versions again, identically for every worker count).
			for round := 0; round < 3; round++ {
				err := sched.Run(tasks, func(i int) error {
					return store.ApplyWrites(tasks[i])
				})
				if err != nil {
					t.Fatalf("trial %d workers %d: %v", trial, workers, err)
				}
			}
			snap := store.Snapshot()
			if workers == 1 {
				reference = snap
				continue
			}
			for i := range snap {
				if snap[i] != reference[i] {
					t.Fatalf("trial %d workers %d: item %d diverged: %+v vs serial %+v",
						trial, workers, i, snap[i], reference[i])
				}
			}
		}
	}
}

// TestSchedulerChainsConflicts checks that write sets sharing an item are
// never installed concurrently and always in delivery order.
func TestSchedulerChainsConflicts(t *testing.T) {
	forceParallelism(t)
	const n = 64
	// Every task writes item 0: the schedule must degenerate to a serial
	// chain in index order.
	tasks := make([][]storage.Write, n)
	for i := range tasks {
		tasks[i] = []storage.Write{{Item: 0, Value: int64(i)}}
	}
	var order []int
	var running atomic.Int32
	sched := New(8)
	err := sched.Run(tasks, func(i int) error {
		if running.Add(1) != 1 {
			t.Error("conflicting installs ran concurrently")
		}
		order = append(order, i)
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("installed %d of %d tasks", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("conflicting tasks installed out of order: position %d got task %d", i, got)
		}
	}
}

// TestSchedulerRunsDisjointInParallel checks that a batch of disjoint write
// sets actually uses the worker pool (at least two installs overlap).
func TestSchedulerRunsDisjointInParallel(t *testing.T) {
	forceParallelism(t)
	const n = 32
	tasks := make([][]storage.Write, n)
	for i := range tasks {
		tasks[i] = []storage.Write{{Item: i, Value: 1}}
	}
	var running, peak atomic.Int32
	var once sync.Once
	gate := make(chan struct{})
	sched := New(4)
	err := sched.Run(tasks, func(i int) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		if cur >= 2 {
			// Two installs are in flight: release everyone.
			once.Do(func() { close(gate) })
		}
		// Wait for a companion; if the pool were serial every install would
		// take the timeout path and peak would stay 1.
		select {
		case <-gate:
		case <-time.After(200 * time.Millisecond):
		}
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("disjoint write sets never overlapped (peak concurrency %d)", peak.Load())
	}
}

// TestSchedulerPropagatesError checks that an install error surfaces while
// the rest of the batch still installs.
func TestSchedulerPropagatesError(t *testing.T) {
	forceParallelism(t)
	tasks := make([][]storage.Write, 8)
	for i := range tasks {
		tasks[i] = []storage.Write{{Item: i, Value: 1}}
	}
	var installed atomic.Int32
	sched := New(4)
	err := sched.Run(tasks, func(i int) error {
		installed.Add(1)
		if i == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("want boom, got %v", err)
	}
	if installed.Load() != int32(len(tasks)) {
		t.Fatalf("only %d of %d tasks installed after error", installed.Load(), len(tasks))
	}
}
