package experiments

import (
	"testing"
	"time"

	"groupsafe/internal/core"
)

func TestFigure5TransactionIsLost(t *testing.T) {
	res, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ClientNotified {
		t.Fatal("the client must have been notified of the commit before the crashes")
	}
	if res.ReplayedMessages != 0 {
		t.Fatalf("classical atomic broadcast must not replay messages, got %d", res.ReplayedMessages)
	}
	if res.SurvivorsHaveTransaction {
		t.Fatal("with classical atomic broadcast the recovered system should NOT have the transaction")
	}
	if !res.TransactionLost {
		t.Fatal("Fig. 5: the acknowledged transaction must be lost")
	}
	if res.String() == "" {
		t.Fatal("String should not be empty")
	}
}

func TestFigure7TransactionSurvives(t *testing.T) {
	res, err := RunFigure7()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ClientNotified {
		t.Fatal("the client must have been notified of the commit before the crashes")
	}
	if res.ReplayedMessages == 0 {
		t.Fatal("end-to-end atomic broadcast must replay the unacknowledged message")
	}
	if !res.SurvivorsHaveTransaction {
		t.Fatal("Fig. 7: after log-based recovery the transaction must be present")
	}
	if res.TransactionLost {
		t.Fatal("Fig. 7: the transaction must not be lost")
	}
}

func TestTable1Classification(t *testing.T) {
	rows := RunTable1(9)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLevel := map[core.SafetyLevel]Table1Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	if byLevel[core.GroupSafe].GuaranteedLogged != "none" || byLevel[core.GroupSafe].GuaranteedDeliverd != "all" {
		t.Fatalf("group-safe row = %+v", byLevel[core.GroupSafe])
	}
	if byLevel[core.Safety2].ToleratedCrashes != "9" {
		t.Fatalf("2-safe tolerated crashes = %q", byLevel[core.Safety2].ToleratedCrashes)
	}
	if byLevel[core.GroupSafe].ToleratedCrashes != "< 9" {
		t.Fatalf("group-safe tolerated crashes = %q", byLevel[core.GroupSafe].ToleratedCrashes)
	}
}

func TestTable2CrashTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-injection matrix is slow")
	}
	rows, err := RunTable2(3)
	if err != nil {
		t.Fatal(err)
	}
	byLevel := map[core.SafetyLevel]Table2Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}

	// 0-safe and lazy 1-safe lose the transaction as soon as the delegate
	// crashes.
	for _, level := range []core.SafetyLevel{core.Safety0, core.Safety1Lazy} {
		if !byLevel[level].LostAfterDelegate {
			t.Errorf("%v: delegate crash should lose the transaction", level)
		}
	}
	// Group-communication levels survive the delegate crash and any minority
	// crash.
	for _, level := range []core.SafetyLevel{core.GroupSafe, core.Group1Safe, core.Safety2, core.VerySafe} {
		if byLevel[level].LostAfterDelegate {
			t.Errorf("%v: delegate crash must not lose the transaction", level)
		}
		if byLevel[level].LostAfterMinority {
			t.Errorf("%v: minority crash must not lose the transaction", level)
		}
	}
	// Total failure separates group-safety from 2-safety.
	for _, level := range []core.SafetyLevel{core.GroupSafe, core.Group1Safe} {
		if !byLevel[level].LostAfterTotalFail {
			t.Errorf("%v: total failure (delegate never recovers) should lose the transaction", level)
		}
	}
	for _, level := range []core.SafetyLevel{core.Safety2, core.VerySafe} {
		if byLevel[level].LostAfterTotalFail {
			t.Errorf("%v: total failure must not lose the transaction", level)
		}
	}
	// The measured outcomes match the paper's claims encoded in SafetyLevel.
	for _, r := range rows {
		if r.LostAfterDelegate != r.ExpectedLostDelegate {
			t.Errorf("%v: delegate-crash outcome %v does not match Table 2 expectation %v",
				r.Level, r.LostAfterDelegate, r.ExpectedLostDelegate)
		}
		if r.LostAfterTotalFail != r.ExpectedLostTotal {
			t.Errorf("%v: total-failure outcome %v does not match Table 2 expectation %v",
				r.Level, r.LostAfterTotalFail, r.ExpectedLostTotal)
		}
	}
}

func TestTable3LossConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-injection matrix is slow")
	}
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Column 1: the group does not fail — neither level loses transactions.
	if rows[0].GroupSafeLost || rows[0].Group1SafeLost {
		t.Errorf("no loss expected when the group survives: %+v", rows[0])
	}
	// Column 2: the group fails but the delegate recovers — only group-safe
	// can lose the transaction (group-1-safe has it on the delegate's disk).
	if !rows[1].GroupSafeLost {
		t.Errorf("group-safe should lose the transaction when the group fails: %+v", rows[1])
	}
	if rows[1].Group1SafeLost {
		t.Errorf("group-1-safe should keep the transaction on the delegate's log: %+v", rows[1])
	}
	// Column 3: the group fails and the delegate never recovers — both lose.
	if !rows[2].GroupSafeLost || !rows[2].Group1SafeLost {
		t.Errorf("both levels should lose the transaction: %+v", rows[2])
	}
}

func TestFig2VsFig8Trace(t *testing.T) {
	res, err := RunFig2VsFig8Trace(20*time.Millisecond, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Group1SafeResponse < 15*time.Millisecond {
		t.Fatalf("group-1-safe response %v should include the %v disk force", res.Group1SafeResponse, res.DiskSyncDelay)
	}
	if res.GroupSafeResponse >= res.Group1SafeResponse {
		t.Fatalf("group-safe (%v) should respond faster than group-1-safe (%v)",
			res.GroupSafeResponse, res.Group1SafeResponse)
	}
	if res.ResponseTimeSavings < 10*time.Millisecond {
		t.Fatalf("savings %v should be roughly the disk-force latency", res.ResponseTimeSavings)
	}
}

func TestDiskVsBroadcast(t *testing.T) {
	res, err := RunDiskVsBroadcast(8*time.Millisecond, 70*time.Microsecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BroadcastCheaper {
		t.Fatalf("an atomic broadcast (%v) should be cheaper than a disk force (%v)",
			res.AtomicBroadcast, res.DiskForce)
	}
	if res.Ratio <= 1 {
		t.Fatalf("ratio = %v, want > 1", res.Ratio)
	}
}

func TestSection7Scaling(t *testing.T) {
	points := RunSection7Scaling(ScalingConfig{MinServers: 3, MaxServers: 15, Trials: 5000})
	if len(points) != 13 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.LazyViolationProb <= first.LazyViolationProb {
		t.Fatalf("lazy violation probability should grow with n: %v -> %v",
			first.LazyViolationProb, last.LazyViolationProb)
	}
	if last.GroupSafeViolateProb >= first.GroupSafeViolateProb {
		t.Fatalf("group-safe violation probability should shrink with n: %v -> %v",
			first.GroupSafeViolateProb, last.GroupSafeViolateProb)
	}
	for _, p := range points {
		if p.LazyViolationProb < 0 || p.LazyViolationProb > 1 || p.GroupSafeViolateProb < 0 || p.GroupSafeViolateProb > 1 {
			t.Fatalf("probabilities out of range at n=%d: %+v", p.Servers, p)
		}
	}
}

func TestScalingConfigDefaults(t *testing.T) {
	cfg := ScalingConfig{}
	cfg.applyDefaults()
	if cfg.MinServers != 3 || cfg.MaxServers != 15 || cfg.Trials != 20000 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestTechniqueComparisonRunsAllThreeTechniques(t *testing.T) {
	results, err := RunTechniqueComparison(TechniqueComparisonConfig{
		Replicas:      3,
		Items:         512,
		Clients:       3,
		TxnsPerClient: 15,
		DiskSyncDelay: 200 * time.Microsecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.AllTechniques()) {
		t.Fatalf("got %d results, want %d", len(results), len(core.AllTechniques()))
	}
	byTech := map[core.TechniqueID]TechniqueResult{}
	for _, r := range results {
		byTech[r.Technique] = r
		if r.Committed == 0 {
			t.Fatalf("%v committed nothing: %+v", r.Technique, r)
		}
		if !r.Consistent {
			t.Fatalf("%v replicas diverged: %+v", r.Technique, r)
		}
		if r.ResponseMeanMs <= 0 || r.MsgsPerTxn <= 0 {
			t.Fatalf("%v metrics not populated: %+v", r.Technique, r)
		}
	}
	if byTech[core.TechActive].Aborted != 0 {
		t.Fatalf("active replication must not abort: %+v", byTech[core.TechActive])
	}
	if byTech[core.TechLazyPrimary].Level != core.Safety1Lazy {
		t.Fatalf("lazy primary-copy level = %v", byTech[core.TechLazyPrimary].Level)
	}
	// Lazy primary-copy sends one point-to-point message per secondary per
	// update transaction; the broadcast techniques pay the 3-round uniform
	// atomic broadcast and must cost more on the wire.
	if byTech[core.TechLazyPrimary].MsgsPerTxn >= byTech[core.TechCertification].MsgsPerTxn {
		t.Fatalf("lazy primary-copy should be cheapest on the wire: lazy=%.1f cert=%.1f",
			byTech[core.TechLazyPrimary].MsgsPerTxn, byTech[core.TechCertification].MsgsPerTxn)
	}
	t.Log("\n" + FormatTechniqueComparison(results))
}

func TestTechniqueComparisonReadMixSplitsClasses(t *testing.T) {
	results, err := RunTechniqueComparison(TechniqueComparisonConfig{
		Replicas:      3,
		Items:         1024,
		Clients:       2,
		TxnsPerClient: 30,
		ReadFraction:  0.7,
		QueryKeys:     3,
		DiskSyncDelay: 100 * time.Microsecond,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Queries == 0 || r.Updates == 0 {
			t.Fatalf("%v: class counts query=%d update=%d, want both classes", r.Technique, r.Queries, r.Updates)
		}
		if r.QueryBroadcasts != 0 {
			t.Fatalf("%v: %d broadcasts attributed to read-only transactions, want 0", r.Technique, r.QueryBroadcasts)
		}
		if r.QueryMeanMs <= 0 || r.UpdateMeanMs <= 0 {
			t.Fatalf("%v: per-class response times missing: %+v", r.Technique, r)
		}
		if r.Technique != core.TechLazyPrimary && r.MsgsPerUpdate <= 0 {
			t.Fatalf("%v: msgs-per-update = %v, want > 0", r.Technique, r.MsgsPerUpdate)
		}
	}
}
