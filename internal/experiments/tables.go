package experiments

import (
	"context"
	"fmt"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

// Table1Row is one row of the paper's Table 1: the classification of safety
// levels by delivery and logging guarantees at client-notification time.
type Table1Row struct {
	Level              core.SafetyLevel
	GuaranteedDeliverd string
	GuaranteedLogged   string
	ToleratedCrashes   string
}

// RunTable1 produces the classification of Table 1 (and the crash-tolerance
// column of Table 2) for a group of n servers.
func RunTable1(n int) []Table1Row {
	rows := make([]Table1Row, 0, len(core.AllLevels()))
	for _, level := range core.AllLevels() {
		tolerated := fmt.Sprintf("%d", level.ToleratedCrashes(n))
		switch level {
		case core.GroupSafe, core.Group1Safe:
			tolerated = fmt.Sprintf("< %d", n)
		case core.Safety2, core.VerySafe:
			tolerated = fmt.Sprintf("%d", n)
		}
		rows = append(rows, Table1Row{
			Level:              level,
			GuaranteedDeliverd: level.GuaranteedDelivered(),
			GuaranteedLogged:   level.GuaranteedLogged(),
			ToleratedCrashes:   tolerated,
		})
	}
	return rows
}

// Table2Row is the operational verification of Table 2: for each safety
// level, is an acknowledged transaction lost after (a) the crash of the
// delegate only, (b) the crash of a minority of servers, (c) the crash of all
// servers with only the non-delegates recovering.
type Table2Row struct {
	Level                core.SafetyLevel
	LostAfterDelegate    bool
	LostAfterMinority    bool
	LostAfterTotalFail   bool
	ExpectedLostDelegate bool
	ExpectedLostTotal    bool
}

// RunTable2 runs the crash-tolerance experiments for every safety level on a
// cluster of n replicas (n >= 3).
func RunTable2(n int) ([]Table2Row, error) {
	if n < 3 {
		n = 3
	}
	rows := make([]Table2Row, 0, len(core.AllLevels()))
	for _, level := range core.AllLevels() {
		row := Table2Row{
			Level:                level,
			ExpectedLostDelegate: level.ToleratedCrashes(n) == 0,
			ExpectedLostTotal:    level.ToleratedCrashes(n) < n,
		}
		lost, err := lostAfterDelegateCrash(level, n)
		if err != nil {
			return nil, fmt.Errorf("table 2, %v, delegate crash: %w", level, err)
		}
		row.LostAfterDelegate = lost

		lost, err = lostAfterMinorityCrash(level, n)
		if err != nil {
			return nil, fmt.Errorf("table 2, %v, minority crash: %w", level, err)
		}
		row.LostAfterMinority = lost

		lost, err = lostAfterTotalFailure(level)
		if err != nil {
			return nil, fmt.Errorf("table 2, %v, total failure: %w", level, err)
		}
		row.LostAfterTotalFail = lost
		rows = append(rows, row)
	}
	return rows, nil
}

// lostAfterDelegateCrash commits one transaction, crashes the delegate
// immediately afterwards (before any lazy propagation), and checks whether
// the remaining, available system still has the transaction.
func lostAfterDelegateCrash(level core.SafetyLevel, n int) (bool, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:             n,
		Items:                128,
		Level:                level,
		ExecTimeout:          5 * time.Second,
		LazyPropagationDelay: 200 * time.Millisecond,
	})
	if err != nil {
		return false, err
	}
	defer cluster.Close()

	res, err := cluster.Execute(context.Background(), 0, probeRequest())
	if err != nil {
		return false, err
	}
	if !res.Committed() {
		return false, fmt.Errorf("probe transaction did not commit under %v", level)
	}
	cluster.Crash(0)

	// The available system is everyone but the delegate.
	return !availableSystemHasTransaction(cluster, 1, 2*time.Second), nil
}

// lostAfterMinorityCrash commits one transaction, crashes a minority of the
// servers (not the delegate), and checks the availability of the transaction
// on the remaining servers.
func lostAfterMinorityCrash(level core.SafetyLevel, n int) (bool, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:    n,
		Items:       128,
		Level:       level,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		return false, err
	}
	defer cluster.Close()

	res, err := cluster.Execute(context.Background(), 0, probeRequest())
	if err != nil {
		return false, err
	}
	if !res.Committed() {
		return false, fmt.Errorf("probe transaction did not commit under %v", level)
	}
	// Crash a minority of non-delegate servers.
	minority := (n - 1) / 2
	for i := 0; i < minority; i++ {
		cluster.Crash(n - 1 - i)
	}
	return !availableSystemHasTransaction(cluster, 0, 2*time.Second), nil
}

// lostAfterTotalFailure runs the Fig. 5 schedule for the level: every server
// crashes (the non-delegates in the delivered-but-unprocessed window) and
// only the non-delegates recover.
func lostAfterTotalFailure(level core.SafetyLevel) (bool, error) {
	if !level.UsesGroupCommunication() {
		// For the 0-safe and lazy baselines a total failure is at least as bad
		// as a delegate crash; reuse the delegate-crash scenario outcome.
		return lostAfterDelegateCrash(level, 3)
	}
	result, err := runDeliveryCrashSchedule(level)
	if err != nil {
		return false, err
	}
	return result.TransactionLost, nil
}

// availableSystemHasTransaction polls the non-crashed replicas, starting at
// index from, for the probe value.
func availableSystemHasTransaction(cluster *core.Cluster, from int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		for i := from; i < cluster.Size(); i++ {
			if cluster.Replica(i).Crashed() {
				continue
			}
			if v, err := cluster.Value(i, scenarioItem); err == nil && v == scenarioValue {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func probeRequest() core.Request {
	return core.Request{Ops: []workload.Op{{Item: scenarioItem, Write: true, Value: scenarioValue}}}
}

// Table3Row compares group-safe and group-1-safe under the three conditions
// of the paper's Table 3.
type Table3Row struct {
	Condition      string
	GroupSafeLost  bool
	Group1SafeLost bool
}

// RunTable3 runs the three columns of Table 3 for both levels.
func RunTable3() ([]Table3Row, error) {
	conditions := []struct {
		name string
		run  func(level core.SafetyLevel) (bool, error)
	}{
		{"group does not fail", table3GroupSurvives},
		{"group fails, delegate recovers", table3GroupFailsDelegateRecovers},
		{"group fails, delegate crashes for good", table3GroupFailsDelegateGone},
	}
	rows := make([]Table3Row, 0, len(conditions))
	for _, cond := range conditions {
		gs, err := cond.run(core.GroupSafe)
		if err != nil {
			return nil, fmt.Errorf("table 3, %s, group-safe: %w", cond.name, err)
		}
		g1s, err := cond.run(core.Group1Safe)
		if err != nil {
			return nil, fmt.Errorf("table 3, %s, group-1-safe: %w", cond.name, err)
		}
		rows = append(rows, Table3Row{Condition: cond.name, GroupSafeLost: gs, Group1SafeLost: g1s})
	}
	return rows, nil
}

// table3GroupSurvives: only a minority of servers crash — neither level loses
// the transaction.
func table3GroupSurvives(level core.SafetyLevel) (bool, error) {
	return lostAfterMinorityCrash(level, 3)
}

// table3GroupFailsDelegateRecovers: every server crashes (the group fails),
// the non-delegates never processed the transaction, and only the delegate
// recovers.  Group-1-safe recovers the transaction from the delegate's forced
// log; group-safe had not forced anything and loses it.
func table3GroupFailsDelegateRecovers(level core.SafetyLevel) (bool, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:    3,
		Items:       128,
		Level:       level,
		ExecTimeout: 5 * time.Second,
	})
	if err != nil {
		return false, err
	}
	defer cluster.Close()

	for i := 1; i < cluster.Size(); i++ {
		replica := cluster.Replica(i)
		replica.SetDeliverHook(func(uint64) { replica.Crash() })
	}
	res, err := cluster.Execute(context.Background(), 0, probeRequest())
	if err != nil {
		return false, err
	}
	if !res.Committed() {
		return false, fmt.Errorf("probe transaction did not commit under %v", level)
	}
	// Wait for S2 and S3 to go down in their delivery window.
	waitDeadline := time.Now().Add(3 * time.Second)
	for cluster.LiveCount() > 1 {
		if time.Now().After(waitDeadline) {
			return false, fmt.Errorf("non-delegate replicas did not crash in the delivery window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The whole group is now down (S2, S3 crashed in the delivery window, the
	// delegate crashes too)...
	cluster.Crash(0)
	// ...and only the delegate comes back.
	if _, err := cluster.Recover(0); err != nil {
		return false, err
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, err := cluster.Value(0, scenarioItem); err == nil && v == scenarioValue {
			return false, nil // recovered: not lost
		}
		time.Sleep(10 * time.Millisecond)
	}
	return true, nil
}

// table3GroupFailsDelegateGone is the Fig. 5 schedule: the group fails and the
// delegate never recovers — both levels lose the transaction.
func table3GroupFailsDelegateGone(level core.SafetyLevel) (bool, error) {
	result, err := runDeliveryCrashSchedule(level)
	if err != nil {
		return false, err
	}
	return result.TransactionLost, nil
}
