package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/stats"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

// TechniqueComparisonConfig parameterises the real-stack replication
// technique comparison — the real-system counterpart of the simulator's
// Fig. 9 trio: the same workload is driven through certification-based,
// active and lazy primary-copy clusters, and the client-visible response
// time, the abort rate and the wire cost per transaction are measured.
type TechniqueComparisonConfig struct {
	// Replicas is the cluster size (default 3).
	Replicas int
	// Items is the database size (default 4096).
	Items int
	// Clients is the number of concurrent clients (default 4).
	Clients int
	// TxnsPerClient is the per-client transaction count (default 50).
	TxnsPerClient int
	// Level is the safety criterion for the group-communication techniques
	// (default group-safe; lazy primary-copy is pinned to 1-safe).
	Level core.SafetyLevel
	// ReadFraction is the fraction of transactions that are pure read-only
	// queries (default 0: the classic write-heavy mix).  Queries execute
	// locally at their delegate with zero group communication, so the
	// comparison splits response times and wire cost by class.
	ReadFraction float64
	// QueryKeys is the number of keys read per query (default 0: the
	// transaction-length bounds).
	QueryKeys int
	// DiskSyncDelay emulates the log-force latency (default 1ms).
	DiskSyncDelay time.Duration
	// NetworkLatency emulates the one-way LAN latency (default 70µs).
	NetworkLatency time.Duration
	// Pipeline carries the shared tuning knobs applied to every cluster.
	tuning.Pipeline
	// Seed seeds the workload and the network (default 1).
	Seed int64
}

func (c *TechniqueComparisonConfig) applyDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Items <= 0 {
		c.Items = 4096
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.TxnsPerClient <= 0 {
		c.TxnsPerClient = 50
	}
	if c.Level == core.Safety0 {
		c.Level = core.GroupSafe
	}
	if c.DiskSyncDelay <= 0 {
		c.DiskSyncDelay = time.Millisecond
	}
	if c.NetworkLatency <= 0 {
		c.NetworkLatency = 70 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TechniqueResult is one technique's measured behaviour on the shared
// workload.
type TechniqueResult struct {
	Technique core.TechniqueID
	// Level is the canonicalised safety level the cluster actually ran.
	Level core.SafetyLevel
	// Committed and Aborted count client-visible outcomes; AbortRate is
	// Aborted / (Committed + Aborted).  Queries count into Committed (they
	// never abort).
	Committed uint64
	Aborted   uint64
	AbortRate float64
	// Queries and Updates split the completed transactions by class.
	Queries uint64
	Updates uint64
	// ResponseMeanMs / ResponseP95Ms are client-observed response times over
	// all transactions; the Query*/Update* fields split them by class (zero
	// when a class did not occur).
	ResponseMeanMs float64
	ResponseP95Ms  float64
	QueryMeanMs    float64
	QueryP95Ms     float64
	UpdateMeanMs   float64
	UpdateP95Ms    float64
	// MsgsPerTxn is the total number of point-to-point network messages the
	// cluster sent divided by the number of completed transactions — the
	// wire cost the paper's Table 3 compares across techniques.
	MsgsPerTxn float64
	// MsgsPerUpdate is the same wire total divided by update transactions
	// only: queries generate zero group communication, so every message is
	// on the updates' account.
	MsgsPerUpdate float64
	// QueryBroadcasts is the number of atomic broadcasts attributable to
	// read-only transactions — the comparison's own proof of the paper's
	// query/update split; it must be 0 on every technique.
	QueryBroadcasts uint64
	// Consistent reports whether every replica converged to identical
	// committed state after the run.
	Consistent bool
}

// String renders one comparison row.
func (r TechniqueResult) String() string {
	row := fmt.Sprintf("%-14s level=%-12s resp=%6.2f ms  p95=%6.2f ms  abort=%5.1f%%  msgs/txn=%5.1f  consistent=%v",
		r.Technique, r.Level, r.ResponseMeanMs, r.ResponseP95Ms, 100*r.AbortRate, r.MsgsPerTxn, r.Consistent)
	if r.Queries > 0 {
		row += fmt.Sprintf("\n%-14s   queries: %d  resp=%6.2f ms  p95=%6.2f ms  broadcasts=%d   updates: %d  resp=%6.2f ms  p95=%6.2f ms  msgs/update=%5.1f",
			"", r.Queries, r.QueryMeanMs, r.QueryP95Ms, r.QueryBroadcasts, r.Updates, r.UpdateMeanMs, r.UpdateP95Ms, r.MsgsPerUpdate)
	}
	return row
}

// RunTechniqueComparison drives the same seeded workload through a real
// cluster per replication technique and reports response time, abort rate
// and messages per transaction for each.
func RunTechniqueComparison(cfg TechniqueComparisonConfig) ([]TechniqueResult, error) {
	cfg.applyDefaults()
	results := make([]TechniqueResult, 0, len(core.AllTechniques()))
	for _, tech := range core.AllTechniques() {
		r, err := runOneTechnique(cfg, tech)
		if err != nil {
			return nil, fmt.Errorf("experiments: technique %v: %w", tech, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func runOneTechnique(cfg TechniqueComparisonConfig, tech core.TechniqueID) (TechniqueResult, error) {
	level := cfg.Level
	if tech == core.TechLazyPrimary {
		level = core.Safety1Lazy
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:       cfg.Replicas,
		Items:          cfg.Items,
		Level:          level,
		Technique:      tech,
		DiskSyncDelay:  cfg.DiskSyncDelay,
		NetworkLatency: cfg.NetworkLatency,
		ExecTimeout:    30 * time.Second,
		Seed:           cfg.Seed,
		Pipeline:       cfg.Pipeline,
	})
	if err != nil {
		return TechniqueResult{}, err
	}
	defer cluster.Close()

	byClass := stats.NewBreakdown()
	sample := stats.NewSample()
	var mu sync.Mutex
	var committed, aborted, queries, updates uint64
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for cl := 0; cl < cfg.Clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Same per-client seeds for every technique: the comparison runs
			// the same transaction streams.
			gen := workload.NewGenerator(workload.Config{
				Items: cfg.Items, MinOps: 4, MaxOps: 8, WriteProb: 0.5,
				ReadFraction: cfg.ReadFraction, QueryMinOps: cfg.QueryKeys, QueryMaxOps: cfg.QueryKeys,
			}, cfg.Seed+int64(cl))
			delegate := cl % cluster.Size()
			for i := 0; i < cfg.TxnsPerClient; i++ {
				req := core.RequestFromWorkload(gen.Next(0, delegate))
				start := time.Now()
				res, err := cluster.Execute(context.Background(), delegate, req)
				elapsed := time.Since(start)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				sample.AddDuration(elapsed)
				if req.ReadOnly {
					queries++
					byClass.Sample("query").AddDuration(elapsed)
				} else {
					updates++
					byClass.Sample("update").AddDuration(elapsed)
				}
				if res.Committed() {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return TechniqueResult{}, err
	default:
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	consistent := cluster.WaitConsistent(waitCtx) == nil
	cancel()
	sent, _ := cluster.Network().Stats()
	var broadcasts uint64
	for _, r := range cluster.Replicas() {
		broadcasts += r.BroadcastStats().Broadcast
	}
	completed := committed + aborted
	result := TechniqueResult{
		Technique:      tech,
		Level:          cluster.Level(),
		Committed:      committed,
		Aborted:        aborted,
		Queries:        queries,
		Updates:        updates,
		ResponseMeanMs: sample.Mean(),
		ResponseP95Ms:  sample.Percentile(95),
		QueryMeanMs:    byClass.Sample("query").Mean(),
		QueryP95Ms:     byClass.Sample("query").Percentile(95),
		UpdateMeanMs:   byClass.Sample("update").Mean(),
		UpdateP95Ms:    byClass.Sample("update").Percentile(95),
		Consistent:     consistent,
	}
	// Every atomic broadcast belongs to an update submission; any excess
	// over the update count would be query traffic — the per-class wire
	// accounting that must stay at zero.
	if broadcasts > updates {
		result.QueryBroadcasts = broadcasts - updates
	}
	if completed > 0 {
		result.AbortRate = float64(aborted) / float64(completed)
		result.MsgsPerTxn = float64(sent) / float64(completed)
	}
	if updates > 0 {
		result.MsgsPerUpdate = float64(sent) / float64(updates)
	}
	return result, nil
}

// FormatTechniqueComparison renders the comparison as a table.
func FormatTechniqueComparison(results []TechniqueResult) string {
	var b strings.Builder
	b.WriteString("Replication technique comparison (same workload, real stack):\n")
	for _, r := range results {
		b.WriteString("  " + r.String() + "\n")
	}
	return b.String()
}
