// Package experiments contains the runnable reproductions of the paper's
// tables, figures and claims that are based on the real replication stack
// (internal/core over the in-memory network):
//
//   - Figure 5: the lost-transaction scenario of classical atomic broadcast;
//   - Figure 7: the same schedule with end-to-end atomic broadcast;
//   - Table 1: the classification of safety levels;
//   - Table 2: tolerated crashes per safety level (operational check);
//   - Table 3: group-safe versus group-1-safe loss conditions;
//   - the Fig. 2 vs Fig. 8 response-time breakdown;
//   - the Sect. 6 "disk write vs atomic broadcast" latency comparison;
//   - the Sect. 7 scaling argument (Monte-Carlo model).
//
// The performance evaluation of Fig. 9 lives in internal/simrep, because the
// paper's own numbers come from a discrete-event simulator.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/workload"
)

// scenarioItem and scenarioValue are the probe item and value written by the
// single-transaction failure scenarios.
const (
	scenarioItem  = 42
	scenarioValue = int64(4242)
)

// FailureScenarioResult describes the outcome of the Fig. 5 / Fig. 7 style
// schedules.
type FailureScenarioResult struct {
	// Level is the safety level of the replicated database.
	Level core.SafetyLevel
	// ClientNotified reports whether the client received a commit
	// confirmation before the crashes.
	ClientNotified bool
	// ReplayedMessages is the number of messages replayed by log-based
	// recovery (always 0 for classical atomic broadcast).
	ReplayedMessages int
	// SurvivorsHaveTransaction reports whether, after the recovery of S2 and
	// S3 (the delegate stays down), the transaction's effects are present.
	SurvivorsHaveTransaction bool
	// TransactionLost is the headline outcome: the client was told "committed"
	// but the recovered system does not contain the transaction.
	TransactionLost bool
}

// String renders a one-line summary.
func (r FailureScenarioResult) String() string {
	return fmt.Sprintf("%-12s notified=%v replayed=%d survivorsHaveTxn=%v lost=%v",
		r.Level, r.ClientNotified, r.ReplayedMessages, r.SurvivorsHaveTransaction, r.TransactionLost)
}

// runDeliveryCrashSchedule executes the schedule shared by Fig. 5 and Fig. 7:
//
//  1. the client submits transaction t to the delegate S1;
//  2. every other replica crashes in the window between the delivery of the
//     message carrying t and its processing by the database;
//  3. the delegate confirms the commit to the client and then crashes;
//  4. S2 and S3 recover (the delegate stays down);
//  5. the function reports whether the recovered system contains t.
//
// With classical atomic broadcast (GroupSafe / Group1Safe) the transaction is
// lost (Fig. 5); with end-to-end atomic broadcast (Safety2) it is recovered
// by replaying the logged, unacknowledged message (Fig. 7).
func runDeliveryCrashSchedule(level core.SafetyLevel) (FailureScenarioResult, error) {
	result := FailureScenarioResult{Level: level}
	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:    3,
		Items:       128,
		Level:       level,
		ExecTimeout: 2 * time.Second,
	})
	if err != nil {
		return result, err
	}
	defer cluster.Close()

	// S2 and S3 crash in the delivered-but-not-processed window.
	for i := 1; i < cluster.Size(); i++ {
		replica := cluster.Replica(i)
		replica.SetDeliverHook(func(uint64) { replica.Crash() })
	}

	res, err := cluster.Execute(context.Background(), 0, core.Request{Ops: []workload.Op{
		{Item: scenarioItem, Write: true, Value: scenarioValue},
	}})
	switch {
	case errors.Is(err, core.ErrTimeout):
		// Very-safe replication cannot notify the client while servers are
		// down: the transaction is simply never acknowledged.
		result.ClientNotified = false
	case err != nil:
		return result, fmt.Errorf("execute: %w", err)
	default:
		result.ClientNotified = res.Committed()
	}

	// The non-delegates crash when they process the delivery; wait until all
	// of them have gone down before crashing the delegate, so the schedule is
	// deterministic.
	deadlineCrash := time.Now().Add(3 * time.Second)
	for {
		allDown := true
		for i := 1; i < cluster.Size(); i++ {
			if !cluster.Replica(i).Crashed() {
				allDown = false
			}
		}
		if allDown {
			break
		}
		if time.Now().After(deadlineCrash) {
			return result, fmt.Errorf("non-delegate replicas did not crash in the delivery window")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The delegate crashes after confirming the commit.
	cluster.Crash(0)

	// S2 and S3 recover; the delegate stays down, so no state transfer source
	// containing t exists.  The crash hooks are removed first: the recovered
	// incarnation processes (replayed) deliveries normally.
	for i := 1; i < cluster.Size(); i++ {
		cluster.Replica(i).SetDeliverHook(nil)
		replayed, err := cluster.Recover(i)
		if err != nil {
			return result, fmt.Errorf("recover replica %d: %w", i, err)
		}
		result.ReplayedMessages += replayed
	}
	// Give the replayed deliveries a moment to be processed.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if has, _ := survivorsHaveTransaction(cluster); has {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	has, err := survivorsHaveTransaction(cluster)
	if err != nil {
		return result, err
	}
	result.SurvivorsHaveTransaction = has
	result.TransactionLost = result.ClientNotified && !has
	return result, nil
}

func survivorsHaveTransaction(cluster *core.Cluster) (bool, error) {
	for i := 1; i < cluster.Size(); i++ {
		v, err := cluster.Value(i, scenarioItem)
		if err != nil {
			return false, err
		}
		if v == scenarioValue {
			return true, nil
		}
	}
	return false, nil
}

// RunFigure5 reproduces the unrecoverable-failure scenario of Fig. 5: the
// replication technique of Fig. 2 (group-1-safe, classical atomic broadcast)
// loses an acknowledged transaction when all servers crash and only the
// non-delegates recover.
func RunFigure5() (FailureScenarioResult, error) {
	return runDeliveryCrashSchedule(core.Group1Safe)
}

// RunFigure7 reproduces the recovery scenario of Fig. 7: the same schedule on
// top of end-to-end atomic broadcast (2-safe replication) replays the logged
// message after recovery, and the transaction survives.
func RunFigure7() (FailureScenarioResult, error) {
	return runDeliveryCrashSchedule(core.Safety2)
}
