package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/gcs"
	"groupsafe/internal/gcs/abcast"
	"groupsafe/internal/gcs/transport"
	"groupsafe/internal/stats"
	"groupsafe/internal/wal"
	"groupsafe/internal/workload"
)

// TraceResult is the Fig. 2 versus Fig. 8 comparison: the measured response
// time of one update transaction under group-1-safe (the commit is forced to
// disk before the reply) and group-safe (the disk force leaves the response
// path).  The gap is roughly the disk-force latency, the paper's explanation
// for the performance gain of group-safety.
type TraceResult struct {
	DiskSyncDelay       time.Duration
	NetworkLatency      time.Duration
	Group1SafeResponse  time.Duration
	GroupSafeResponse   time.Duration
	ResponseTimeSavings time.Duration
}

// RunFig2VsFig8Trace measures the single-transaction response time of the
// Fig. 2 (group-1-safe) and Fig. 8 (group-safe) protocol variants with the
// given emulated disk-force latency and network latency.
func RunFig2VsFig8Trace(diskSync, netLatency time.Duration, txns int) (TraceResult, error) {
	if txns <= 0 {
		txns = 5
	}
	result := TraceResult{DiskSyncDelay: diskSync, NetworkLatency: netLatency}
	measure := func(level core.SafetyLevel) (time.Duration, error) {
		cluster, err := core.NewCluster(core.ClusterConfig{
			Replicas:       3,
			Items:          128,
			Level:          level,
			DiskSyncDelay:  diskSync,
			NetworkLatency: netLatency,
			ExecTimeout:    10 * time.Second,
		})
		if err != nil {
			return 0, err
		}
		defer cluster.Close()
		sample := stats.NewSample()
		for i := 0; i < txns; i++ {
			req := core.Request{Ops: []workload.Op{
				{Item: i % 64, Write: false},
				{Item: (i + 1) % 64, Write: true, Value: int64(i)},
			}}
			start := time.Now()
			res, err := cluster.Execute(context.Background(), 0, req)
			if err != nil {
				return 0, err
			}
			if !res.Committed() {
				return 0, fmt.Errorf("trace transaction aborted under %v", level)
			}
			sample.AddDuration(time.Since(start))
		}
		return time.Duration(sample.Median() * float64(time.Millisecond)), nil
	}

	g1, err := measure(core.Group1Safe)
	if err != nil {
		return result, fmt.Errorf("group-1-safe trace: %w", err)
	}
	gs, err := measure(core.GroupSafe)
	if err != nil {
		return result, fmt.Errorf("group-safe trace: %w", err)
	}
	result.Group1SafeResponse = g1
	result.GroupSafeResponse = gs
	result.ResponseTimeSavings = g1 - gs
	return result, nil
}

// DiskVsBroadcastResult quantifies the Sect. 6 claim that, on a LAN, an
// atomic broadcast (~1 ms in the paper) is far cheaper than forcing a log to
// disk (~8 ms in the paper).
type DiskVsBroadcastResult struct {
	DiskForce        time.Duration
	AtomicBroadcast  time.Duration
	BroadcastCheaper bool
	Ratio            float64
}

// RunDiskVsBroadcast measures the latency of a forced log write (with the
// given emulated disk latency) against the latency of a full uniform atomic
// broadcast round over an n-member group on a network with the given one-way
// message latency.
func RunDiskVsBroadcast(diskSync, netLatency time.Duration, n int) (DiskVsBroadcastResult, error) {
	if n < 3 {
		n = 3
	}
	var result DiskVsBroadcastResult

	// Disk force.
	log := wal.NewMemLogWithDelay(diskSync)
	if _, err := log.Append(wal.Record{Kind: wal.KindCommit, TxnID: 1}); err != nil {
		return result, err
	}
	start := time.Now()
	if err := log.Sync(); err != nil {
		return result, err
	}
	result.DiskForce = time.Since(start)

	// Atomic broadcast round: time from Broadcast to delivery at the sender.
	network := transport.NewMemNetwork(transport.WithLatency(netLatency), transport.WithSeed(1))
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("b%d", i+1)
	}
	type node struct {
		router *gcs.Router
		bc     *abcast.Broadcaster
	}
	nodes := make([]*node, n)
	for i, m := range members {
		router := gcs.NewRouter(network.Endpoint(m))
		bc, err := abcast.New(abcast.Config{Self: m, Members: members}, router)
		if err != nil {
			return result, err
		}
		router.Start()
		nodes[i] = &node{router: router, bc: bc}
	}
	defer func() {
		for _, nd := range nodes {
			nd.bc.Close()
			nd.router.Stop()
		}
	}()

	const rounds = 5
	sample := stats.NewSample()
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := nodes[0].bc.Broadcast([]byte("probe")); err != nil {
			return result, err
		}
		select {
		case <-nodes[0].bc.Deliveries():
			sample.AddDuration(time.Since(start))
		case <-time.After(5 * time.Second):
			return result, fmt.Errorf("atomic broadcast round %d timed out", i)
		}
		// Drain the other nodes so buffers stay small.
		for _, nd := range nodes[1:] {
			select {
			case <-nd.bc.Deliveries():
			case <-time.After(time.Second):
			}
		}
	}
	result.AtomicBroadcast = time.Duration(sample.Median() * float64(time.Millisecond))
	result.BroadcastCheaper = result.AtomicBroadcast < result.DiskForce
	if result.AtomicBroadcast > 0 {
		result.Ratio = float64(result.DiskForce) / float64(result.AtomicBroadcast)
	}
	return result, nil
}

// ScalingPoint is one point of the Sect. 7 scaling comparison: the
// probability that the ACID properties are violated as a function of the
// number of servers, for lazy replication (grows with n) and group-safe
// replication (shrinks with n).
type ScalingPoint struct {
	Servers              int
	LazyViolationProb    float64
	GroupSafeViolateProb float64
}

// ScalingConfig parameterises the Sect. 7 model.
type ScalingConfig struct {
	// MinServers and MaxServers bound the sweep (default 3..15).
	MinServers int
	MaxServers int
	// PairConflictProb is the probability that two concurrently-submitted
	// transactions at two different sites conflict during one observation
	// window (lazy replication accepts both and violates one-copy
	// serialisability).
	PairConflictProb float64
	// ServerCrashProb is the probability that a given server crashes during
	// the observation window (group-safety is violated only when a majority
	// crashes).
	ServerCrashProb float64
	// Trials is the number of Monte-Carlo trials per point.
	Trials int
	// Seed seeds the Monte-Carlo sampling.
	Seed int64
}

func (c *ScalingConfig) applyDefaults() {
	if c.MinServers <= 0 {
		c.MinServers = 3
	}
	if c.MaxServers < c.MinServers {
		c.MaxServers = 15
	}
	if c.PairConflictProb <= 0 {
		c.PairConflictProb = 0.002
	}
	if c.ServerCrashProb <= 0 {
		c.ServerCrashProb = 0.05
	}
	if c.Trials <= 0 {
		c.Trials = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunSection7Scaling evaluates the Sect. 7 argument: with lazy replication,
// the chance of an ACID violation grows with the number of servers (more
// sites submitting conflicting updates without coordination); with group-safe
// replication it decreases (a violation requires the crash of a majority,
// which becomes less likely as servers are added).
func RunSection7Scaling(cfg ScalingConfig) []ScalingPoint {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	points := make([]ScalingPoint, 0, cfg.MaxServers-cfg.MinServers+1)
	for n := cfg.MinServers; n <= cfg.MaxServers; n++ {
		// Lazy replication: a violation happens when any pair of sites
		// accepts conflicting transactions; with p per pair and n(n-1)/2
		// pairs the probability is 1 - (1-p)^pairs (closed form, no sampling
		// noise needed).
		pairs := float64(n*(n-1)) / 2
		lazy := 1 - math.Pow(1-cfg.PairConflictProb, pairs)

		// Group-safe replication: a violation requires the group to fail,
		// i.e. at least a majority of the n servers crash during the window;
		// estimated by Monte-Carlo over independent crashes.
		majority := n/2 + 1
		fails := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			crashed := 0
			for s := 0; s < n; s++ {
				if rng.Float64() < cfg.ServerCrashProb {
					crashed++
				}
			}
			if crashed >= majority {
				fails++
			}
		}
		points = append(points, ScalingPoint{
			Servers:              n,
			LazyViolationProb:    lazy,
			GroupSafeViolateProb: float64(fails) / float64(cfg.Trials),
		})
	}
	return points
}
