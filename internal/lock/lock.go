// Package lock implements the item-level lock manager used by the local
// database component: strict two-phase locking with shared and exclusive
// modes, lock upgrades, and deadlock detection on the wait-for graph (the
// requester that would close a cycle is chosen as the victim).
package lock

import (
	"errors"
	"fmt"
	"sync"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrDeadlock is returned to the transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected, transaction chosen as victim")

// ErrAborted is returned to waiters whose transaction was externally aborted
// while waiting for a lock.
var ErrAborted = errors.New("lock: transaction aborted while waiting")

// Manager is a lock manager over integer-identified items.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items map[int]*itemLock
	// waitFor maps a waiting transaction to the set of transactions it is
	// currently waiting for (the wait-for graph used for deadlock detection).
	waitFor map[uint64]map[uint64]bool
	// aborted marks transactions that were externally aborted; their waiters
	// wake up with ErrAborted.
	aborted map[uint64]bool
	// held maps a transaction to the items it holds locks on.
	held map[uint64]map[int]Mode

	deadlocks uint64
}

type itemLock struct {
	holders map[uint64]Mode
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		items:   make(map[int]*itemLock),
		waitFor: make(map[uint64]map[uint64]bool),
		aborted: make(map[uint64]bool),
		held:    make(map[uint64]map[int]Mode),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire obtains a lock on item in the given mode on behalf of txn,
// blocking until the lock is granted.  It returns ErrDeadlock if granting the
// wait would create a cycle in the wait-for graph, and ErrAborted if the
// transaction is aborted (via Abort) while waiting.
func (m *Manager) Acquire(txn uint64, item int, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted[txn] {
			delete(m.waitFor, txn)
			return ErrAborted
		}
		blockers := m.conflicts(txn, item, mode)
		if len(blockers) == 0 {
			delete(m.waitFor, txn)
			m.grant(txn, item, mode)
			return nil
		}
		// Record the wait edges and check for a cycle.
		edges := make(map[uint64]bool, len(blockers))
		for _, b := range blockers {
			edges[b] = true
		}
		m.waitFor[txn] = edges
		if m.wouldDeadlock(txn) {
			delete(m.waitFor, txn)
			m.deadlocks++
			return ErrDeadlock
		}
		m.cond.Wait()
	}
}

// conflicts returns the transactions that prevent txn from acquiring item in
// mode (empty when the lock can be granted).
func (m *Manager) conflicts(txn uint64, item int, mode Mode) []uint64 {
	il, ok := m.items[item]
	if !ok || len(il.holders) == 0 {
		return nil
	}
	var blockers []uint64
	for holder, hmode := range il.holders {
		if holder == txn {
			continue
		}
		if mode == Exclusive || hmode == Exclusive {
			blockers = append(blockers, holder)
		}
	}
	return blockers
}

func (m *Manager) grant(txn uint64, item int, mode Mode) {
	il, ok := m.items[item]
	if !ok {
		il = &itemLock{holders: make(map[uint64]Mode)}
		m.items[item] = il
	}
	// Upgrades keep the strongest mode.
	if cur, ok := il.holders[txn]; !ok || mode > cur {
		il.holders[txn] = mode
	}
	hm, ok := m.held[txn]
	if !ok {
		hm = make(map[int]Mode)
		m.held[txn] = hm
	}
	if cur, ok := hm[item]; !ok || mode > cur {
		hm[item] = mode
	}
}

// wouldDeadlock reports whether txn is part of a cycle in the wait-for graph.
func (m *Manager) wouldDeadlock(start uint64) bool {
	visited := make(map[uint64]bool)
	var dfs func(node uint64) bool
	dfs = func(node uint64) bool {
		for next := range m.waitFor[node] {
			if next == start {
				return true
			}
			if !visited[next] {
				visited[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// ReleaseAll drops every lock held by txn and wakes all waiters (strict 2PL:
// locks are only released at commit/abort time).
func (m *Manager) ReleaseAll(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn)
	delete(m.aborted, txn)
	m.cond.Broadcast()
}

func (m *Manager) releaseLocked(txn uint64) {
	for item := range m.held[txn] {
		if il, ok := m.items[item]; ok {
			delete(il.holders, txn)
			if len(il.holders) == 0 {
				delete(m.items, item)
			}
		}
	}
	delete(m.held, txn)
	delete(m.waitFor, txn)
}

// Abort marks txn aborted so that any Acquire it is blocked in returns
// ErrAborted, and releases the locks it already holds.  The aborted mark is
// kept until Forget or ReleaseAll is called for the transaction.
func (m *Manager) Abort(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aborted[txn] = true
	m.releaseLocked(txn)
	m.cond.Broadcast()
}

// Forget clears any residual bookkeeping for txn (used after an aborted
// transaction has fully terminated).
func (m *Manager) Forget(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.aborted, txn)
	delete(m.waitFor, txn)
	delete(m.held, txn)
}

// Holds reports whether txn currently holds a lock on item of at least the
// given mode.
func (m *Manager) Holds(txn uint64, item int, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[txn][item]
	return ok && cur >= mode
}

// HeldItems returns the number of items locked by txn.
func (m *Manager) HeldItems(txn uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[txn])
}

// Deadlocks returns the number of deadlocks detected so far.
func (m *Manager) Deadlocks() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deadlocks
}

// ActiveLocks returns the number of items that currently have at least one
// holder.
func (m *Manager) ActiveLocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
