package lock

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestSharedLocksCompatible(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 100, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, 100, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
	if !m.Holds(1, 100, Shared) || !m.Holds(2, 100, Shared) {
		t.Fatal("both transactions should hold shared locks")
	}
	if m.ActiveLocks() != 1 {
		t.Fatalf("ActiveLocks = %d", m.ActiveLocks())
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 5, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(2, 5, Exclusive) }()
	select {
	case <-acquired:
		t.Fatal("conflicting exclusive lock granted while held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken after release")
	}
	if m.Holds(1, 5, Shared) {
		t.Fatal("released transaction still holds lock")
	}
	if !m.Holds(2, 5, Exclusive) {
		t.Fatal("waiter did not acquire the lock")
	}
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 7, Shared); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(2, 7, Exclusive) }()
	select {
	case <-acquired:
		t.Fatal("exclusive granted while shared held by another txn")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade S -> X while being the only holder must succeed immediately.
	if err := m.Acquire(1, 3, Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, 3, Exclusive) {
		t.Fatal("upgrade did not stick")
	}
	// Re-acquiring a weaker mode keeps the exclusive lock.
	if err := m.Acquire(1, 3, Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, 3, Exclusive) {
		t.Fatal("downgrade should not happen implicitly")
	}
	if m.HeldItems(1) != 1 {
		t.Fatalf("HeldItems = %d", m.HeldItems(1))
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, 20, Exclusive); err != nil {
		t.Fatal(err)
	}
	// Txn 1 waits for item 20 (held by 2).
	firstWait := make(chan error, 1)
	go func() { firstWait <- m.Acquire(1, 20, Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	// Txn 2 requesting item 10 closes the cycle and must be chosen victim.
	err := m.Acquire(2, 10, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	if m.Deadlocks() != 1 {
		t.Fatalf("Deadlocks = %d", m.Deadlocks())
	}
	// After the victim releases its locks, txn 1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-firstWait:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor did not acquire lock after victim release")
	}
	m.ReleaseAll(1)
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	for txn := uint64(1); txn <= 3; txn++ {
		if err := m.Acquire(txn, int(txn), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, 2, Exclusive) }() // 1 -> 2
	time.Sleep(30 * time.Millisecond)
	go func() { errs <- m.Acquire(2, 3, Exclusive) }() // 2 -> 3
	time.Sleep(30 * time.Millisecond)
	// 3 -> 1 closes a three-transaction cycle.
	if err := m.Acquire(3, 1, Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(3)
	// The remaining two waits eventually resolve (2 gets item 3, then 1 gets 2
	// only after 2 releases, so release 2's locks once it acquired).
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if m.ActiveLocks() != 0 {
		t.Fatalf("locks leaked: %d", m.ActiveLocks())
	}
}

func TestAbortWakesWaiter(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, 50, Exclusive); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- m.Acquire(2, 50, Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	m.Abort(2)
	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("expected ErrAborted, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("aborted waiter did not wake up")
	}
	m.Forget(2)
	m.ReleaseAll(1)
	// After Forget, the transaction id can be reused.
	if err := m.Acquire(2, 50, Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

func TestConcurrentWorkloadNoLostLocks(t *testing.T) {
	m := NewManager()
	const workers = 8
	const iterations = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	inCritical := make(map[int]uint64)
	violations := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				txn := uint64(w*iterations + i + 1)
				item := i % 5
				if err := m.Acquire(txn, item, Exclusive); err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.Forget(txn)
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				if holder, busy := inCritical[item]; busy {
					violations++
					_ = holder
				}
				inCritical[item] = txn
				mu.Unlock()

				mu.Lock()
				delete(inCritical, item)
				mu.Unlock()
				m.ReleaseAll(txn)
			}
		}(w)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if m.ActiveLocks() != 0 {
		t.Fatalf("locks leaked: %d", m.ActiveLocks())
	}
}

func TestQuickNoConflictingGrants(t *testing.T) {
	// Property: after any sequence of acquire/release operations executed
	// serially, no item is ever held exclusively by one transaction while
	// another transaction holds it in any mode.
	type step struct {
		Txn     uint8
		Item    uint8
		Mode    bool // true = exclusive
		Release bool
	}
	f := func(steps []step) bool {
		m := NewManager()
		held := make(map[uint64]bool)
		for _, s := range steps {
			txn := uint64(s.Txn%4) + 1
			item := int(s.Item % 8)
			if s.Release {
				m.ReleaseAll(txn)
				held[txn] = false
				continue
			}
			mode := Shared
			if s.Mode {
				mode = Exclusive
			}
			// Only attempt acquisitions that cannot block (the property test
			// runs serially): skip if a conflicting holder exists.
			conflict := false
			for other := uint64(1); other <= 4; other++ {
				if other == txn || !held[other] {
					continue
				}
				if m.Holds(other, item, Exclusive) || (mode == Exclusive && m.Holds(other, item, Shared)) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if err := m.Acquire(txn, item, mode); err != nil {
				return false
			}
			held[txn] = true
			// Invariant check: an exclusive holder excludes everyone else.
			for other := uint64(1); other <= 4; other++ {
				if other == txn {
					continue
				}
				if m.Holds(txn, item, Exclusive) && m.Holds(other, item, Shared) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
