// Command gsdb-fuzz drives the deterministic fault-injection scenario fuzzer
// from the shell: seed sweeps, single-seed runs, trace replay, schedule
// shrinking and corpus emission.
//
// Usage:
//
//	gsdb-fuzz -seeds 50                          # sweep seeds 1..50
//	gsdb-fuzz -start 1000 -seeds 200 -out /tmp   # nightly slice, artifacts in /tmp
//	gsdb-fuzz -seed 42 -technique active         # one pinned run
//	gsdb-fuzz -replay failure.trace              # re-run a recorded trace
//	gsdb-fuzz -seed 7 -emit corpus/seed-7.trace  # write the trace, no run
//
// The exit status is 0 when every run satisfied the invariant suite, 1 on a
// violation (the minimised failing trace is written to -out), 2 on usage or
// harness errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"groupsafe/gsdb/fuzz"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed       = flag.Int64("seed", 0, "run exactly this seed (0: sweep -start..-start+-seeds-1)")
		start      = flag.Int64("start", 1, "first seed of a sweep")
		seeds      = flag.Int64("seeds", 25, "number of seeds in a sweep")
		technique  = flag.String("technique", "", "pin the replication technique (certification, active, lazy-primary)")
		level      = flag.String("level", "", "pin the safety level (0-safe, lazy, group-safe, group-1-safe, 2-safe, very-safe)")
		profile    = flag.String("profile", "", "adversary profile: "+strings.Join(fuzz.Profiles(), ", "))
		replicas   = flag.Int("replicas", 0, "pin the cluster size (0: derived from the seed)")
		steps      = flag.Int("steps", 0, "schedule length (0: default)")
		txnTimeout = flag.Duration("txn-timeout", 0, "per-transaction timeout (0: default)")
		replay     = flag.String("replay", "", "replay a recorded trace file instead of generating")
		emit       = flag.String("emit", "", "write the generated trace to this path and exit without running")
		noShrink   = flag.Bool("no-shrink", false, "skip schedule minimisation on failure")
		out        = flag.String("out", ".", "directory for failing trace artifacts")
	)
	flag.Parse()

	if *replay != "" {
		sc, err := fuzz.ReadTrace(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return check(sc, *out, *noShrink)
	}

	mkConfig := func(s int64) fuzz.Config {
		return fuzz.Config{
			Seed:       s,
			Technique:  *technique,
			Level:      *level,
			Profile:    *profile,
			Replicas:   *replicas,
			Steps:      *steps,
			TxnTimeout: *txnTimeout,
		}
	}

	if *emit != "" {
		sc, err := fuzz.Generate(mkConfig(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := fuzz.WriteTrace(*emit, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("wrote %s (%d steps, technique=%s level=%s)\n", *emit, len(sc.Steps), sc.Cfg.Technique, sc.Cfg.Level)
		return 0
	}

	first, count := *start, *seeds
	if *seed != 0 {
		first, count = *seed, 1
	}
	began := time.Now()
	for s := first; s < first+count; s++ {
		sc, err := fuzz.Generate(mkConfig(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("seed %d: technique=%s level=%s replicas=%d profile=%s steps=%d\n",
			s, sc.Cfg.Technique, sc.Cfg.Level, sc.Cfg.Replicas, sc.Cfg.Profile, len(sc.Steps))
		if code := check(sc, *out, *noShrink); code != 0 {
			return code
		}
	}
	fmt.Printf("%d seed(s) clean in %v\n", count, time.Since(began).Round(time.Millisecond))
	return 0
}

// check runs one scenario, shrinks on failure and writes the artifact.
func check(sc *fuzz.Scenario, outDir string, noShrink bool) int {
	rec, err := fuzz.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	violations := fuzz.CheckAll(rec)
	if len(violations) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "seed %d: %d invariant violation(s):\n%s",
		sc.Cfg.Seed, len(violations), fuzz.ReportViolations(violations))
	final := sc
	if !noShrink {
		res := fuzz.Shrink(sc, violations, 48)
		final = res.Scenario
		fmt.Fprintf(os.Stderr, "minimised to %d steps in %d runs\n", len(final.Steps), res.Runs)
	}
	path := filepath.Join(outDir, fmt.Sprintf("fuzz-failure-seed%d%s", sc.Cfg.Seed, fuzz.TraceExt))
	if err := fuzz.WriteTrace(path, final); err != nil {
		fmt.Fprintln(os.Stderr, err)
	} else {
		fmt.Fprintf(os.Stderr, "replayable trace: %s (gsdb-fuzz -replay %s)\n", path, path)
	}
	return 1
}
