// Command gsdb-demo starts an in-process replicated database cluster, drives
// it with the Table 4 workload, injects a crash and a recovery, and prints
// the observed response times and consistency status.  It is the quickest way
// to see the replication stack (atomic broadcast, certification, safety
// levels, crash recovery) working end to end.
//
// Usage:
//
//	gsdb-demo -level group-safe -replicas 3 -txns 200 -disk-sync 2ms
//	gsdb-demo -technique active -txns 200
//	gsdb-demo -compare-techniques
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"groupsafe/internal/core"
	"groupsafe/internal/experiments"
	"groupsafe/internal/stats"
	"groupsafe/internal/tuning"
	"groupsafe/internal/workload"
)

func main() {
	levelFlag := flag.String("level", "group-safe", "safety level: 0-safe | 1-safe-lazy | group-safe | group-1-safe | 2-safe | very-safe")
	techniqueFlag := flag.String("technique", "certification", "replication technique: certification | active | lazy-primary")
	replicas := flag.Int("replicas", 3, "number of replica servers")
	txns := flag.Int("txns", 200, "number of transactions to run")
	diskSync := flag.Duration("disk-sync", 2*time.Millisecond, "emulated log-force latency")
	netLatency := flag.Duration("net-latency", 70*time.Microsecond, "emulated one-way network latency")
	crash := flag.Bool("crash", true, "crash and recover one replica mid-run")
	seed := flag.Int64("seed", 1, "workload seed")
	batch := flag.Int("batch", 1, "atomic broadcast batch size (<=1 disables sender batching)")
	batchDelay := flag.Duration("batch-delay", time.Millisecond, "max wait for broadcast co-travellers when batching")
	applyWorkers := flag.Int("apply-workers", 1, "concurrent write-set installs per replica (<=1: serial apply)")
	compare := flag.Bool("compare-techniques", false, "run the same workload over all three replication techniques and print the comparison")
	flag.Parse()

	if *compare {
		const compareClients = 4
		perClient := *txns / compareClients
		if perClient < 1 {
			perClient = 1
		}
		results, err := experiments.RunTechniqueComparison(experiments.TechniqueComparisonConfig{
			Replicas:       *replicas,
			Items:          10000,
			Clients:        compareClients,
			TxnsPerClient:  perClient,
			DiskSyncDelay:  *diskSync,
			NetworkLatency: *netLatency,
			Pipeline:       tuning.Pipe(*batch, *batchDelay, *applyWorkers),
			Seed:           *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatTechniqueComparison(results))
		return
	}

	var level core.SafetyLevel
	found := false
	for _, l := range core.AllLevels() {
		if l.String() == *levelFlag {
			level, found = l, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown safety level %q\n", *levelFlag)
		os.Exit(2)
	}
	technique, err := core.ParseTechnique(*techniqueFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The lazy primary-copy technique is inherently 1-safe: accept the
	// default -level rather than rejecting the flag combination.
	if technique == core.TechLazyPrimary && level.UsesGroupCommunication() {
		level = core.Safety1Lazy
	}

	cluster, err := core.NewCluster(core.ClusterConfig{
		Replicas:       *replicas,
		Items:          10000,
		Level:          level,
		Technique:      technique,
		DiskSyncDelay:  *diskSync,
		NetworkLatency: *netLatency,
		ExecTimeout:    15 * time.Second,
		Seed:           *seed,
		Pipeline:       tuning.Pipe(*batch, *batchDelay, *applyWorkers),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer cluster.Close()

	fmt.Printf("started %d-replica cluster: technique %s, safety level %s\n", *replicas, technique, cluster.Level())
	gen := workload.NewGenerator(workload.DefaultConfig(), *seed)
	sample := stats.NewSample()
	commits, aborts := 0, 0
	crashAt := *txns / 3
	recoverAt := 2 * *txns / 3

	for i := 0; i < *txns; i++ {
		if *crash && i == crashAt && *replicas >= 3 {
			fmt.Printf("  [txn %d] crashing replica %s\n", i, cluster.Replica(*replicas-1).ID())
			cluster.Crash(*replicas - 1)
			for j := 0; j < *replicas-1; j++ {
				cluster.Replica(j).Suspect(cluster.Replica(*replicas - 1).ID())
			}
		}
		if *crash && i == recoverAt && *replicas >= 3 {
			replayed, err := cluster.Recover(*replicas - 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "recover:", err)
				os.Exit(1)
			}
			fmt.Printf("  [txn %d] recovered replica %s (state transfer + %d replayed messages)\n",
				i, cluster.Replica(*replicas-1).ID(), replayed)
		}
		delegate := i % (*replicas)
		if cluster.Replica(delegate).Crashed() {
			delegate = (delegate + 1) % *replicas
		}
		start := time.Now()
		res, err := cluster.Execute(delegate, core.RequestFromWorkload(gen.Next(0, delegate)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "execute:", err)
			os.Exit(1)
		}
		sample.AddDuration(time.Since(start))
		if res.Committed() {
			commits++
		} else {
			aborts++
		}
	}

	consistent := cluster.WaitConsistent(10 * time.Second)
	total := cluster.TotalStats()
	fmt.Printf("\nresults:\n")
	fmt.Printf("  transactions: %d committed, %d aborted (abort rate %.1f%%)\n",
		commits, aborts, 100*float64(aborts)/float64(commits+aborts))
	fmt.Printf("  response time: mean %.2f ms, p95 %.2f ms, max %.2f ms\n",
		sample.Mean(), sample.Percentile(95), sample.Max())
	fmt.Printf("  deliveries across replicas: %d, lazy applies: %d\n", total.Delivered, total.LazyApply)
	fmt.Printf("  all live replicas consistent: %v\n", consistent)
	if !consistent && level == core.Safety1Lazy {
		fmt.Println("  (lazy replication gives no consistency guarantee under concurrent conflicting updates)")
	}
}
