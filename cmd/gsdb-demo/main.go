// Command gsdb-demo starts an in-process replicated database cluster through
// the public gsdb API, drives it with the Table 4 workload, injects a crash
// and a recovery, and prints the observed response times and consistency
// status.  It is the quickest way to see the replication stack (atomic
// broadcast, certification, safety levels, crash recovery) working end to
// end.
//
// Usage:
//
//	gsdb-demo -level group-safe -replicas 3 -txns 200 -disk-sync 2ms
//	gsdb-demo -technique active -txns 200
//	gsdb-demo -mix-safety very-safe -txns 200   # every 10th txn overridden
//	gsdb-demo -compare-techniques
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/experiments"
	"groupsafe/gsdb/stats"
)

func main() {
	levelFlag := flag.String("level", "group-safe", "safety level: 0-safe | 1-safe-lazy | group-safe | group-1-safe | 2-safe | very-safe")
	techniqueFlag := flag.String("technique", "certification", "replication technique: certification | active | lazy-primary")
	replicas := flag.Int("replicas", 3, "number of replica servers")
	partitions := flag.Int("partitions", 1, "hash partitions of the keyspace, each its own replica group and total order (1: single global order)")
	txns := flag.Int("txns", 200, "number of transactions to run")
	diskSync := flag.Duration("disk-sync", 2*time.Millisecond, "emulated log-force latency")
	netLatency := flag.Duration("net-latency", 70*time.Microsecond, "emulated one-way network latency")
	crash := flag.Bool("crash", true, "crash and recover one replica mid-run")
	seed := flag.Int64("seed", 1, "workload seed")
	batch := flag.Int("batch", 1, "atomic broadcast batch size (<=1 disables sender batching)")
	batchDelay := flag.Duration("batch-delay", time.Millisecond, "max wait for broadcast co-travellers when batching")
	adaptive := flag.Bool("batch-adaptive", false, "adapt the co-traveller wait to each sender's arrival rate (ignores -batch-delay)")
	delayCap := flag.Duration("batch-delay-cap", 0, "upper bound on the adaptive co-traveller wait (0: default cap)")
	pipelined := flag.Bool("pipelined-sequencer", false, "overlap ORDER assignment with DATA reception and coalesce ACK fan-in")
	rotateEvery := flag.Int("rotate-sequencer-every", 0, "rotate the sequencer role after this many assignments (0: fixed sequencer)")
	applyWorkers := flag.Int("apply-workers", 1, "concurrent write-set installs per replica (<=1: serial apply)")
	mixSafety := flag.String("mix-safety", "", "per-transaction safety override applied to every 10th transaction (e.g. very-safe)")
	compare := flag.Bool("compare-techniques", false, "run the same workload over all three replication techniques and print the comparison")
	readFraction := flag.Float64("read-fraction", 0, "fraction of transactions that are pure read-only queries (0: Table 4 mix)")
	queryKeys := flag.Int("query-keys", 0, "keys read per query transaction (0: transaction-length bounds)")
	flag.Parse()

	ctx := context.Background()

	if *compare {
		const compareClients = 4
		perClient := *txns / compareClients
		if perClient < 1 {
			perClient = 1
		}
		results, err := experiments.RunTechniqueComparison(experiments.TechniqueComparisonConfig{
			Replicas:       *replicas,
			Items:          10000,
			Clients:        compareClients,
			TxnsPerClient:  perClient,
			ReadFraction:   *readFraction,
			QueryKeys:      *queryKeys,
			DiskSyncDelay:  *diskSync,
			NetworkLatency: *netLatency,
			Pipeline:       demoPipeline(*batch, *batchDelay, *applyWorkers, *adaptive, *delayCap, *pipelined, *rotateEvery),
			Seed:           *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatTechniqueComparison(results))
		return
	}

	level, err := gsdb.ParseLevel(*levelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	technique, err := gsdb.ParseTechnique(*techniqueFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The lazy primary-copy technique is inherently 1-safe: accept the
	// default -level rather than rejecting the flag combination.
	if technique == gsdb.TechLazyPrimary && level.UsesGroupCommunication() {
		level = gsdb.Safety1Lazy
	}
	var overrideLevel *gsdb.SafetyLevel
	if *mixSafety != "" {
		l, err := gsdb.ParseLevel(*mixSafety)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		overrideLevel = &l
	}

	openOpts := []gsdb.Option{
		gsdb.WithReplicas(*replicas),
		gsdb.WithItems(10000),
		gsdb.WithSafetyLevel(level),
		gsdb.WithTechnique(technique),
		gsdb.WithDiskSyncDelay(*diskSync),
		gsdb.WithNetworkLatency(*netLatency),
		gsdb.WithExecTimeout(15 * time.Second),
		gsdb.WithSeed(*seed),
		gsdb.WithBatching(*batch, *batchDelay),
		gsdb.WithApplyWorkers(*applyWorkers),
	}
	if *adaptive {
		openOpts = append(openOpts, gsdb.WithAdaptiveBatching(*batch, *delayCap))
	}
	if *pipelined {
		openOpts = append(openOpts, gsdb.WithPipelinedSequencer())
	}
	if *rotateEvery > 0 {
		openOpts = append(openOpts, gsdb.WithRotatingSequencer(*rotateEvery))
	}
	if *partitions > 1 {
		openOpts = append(openOpts, gsdb.WithPartitions(*partitions))
	}
	client, err := gsdb.Open(ctx, openOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer client.Close()

	if client.Partitions() > 1 {
		fmt.Printf("started %d-replica cluster: technique %s, safety level %s, %d keyspace partitions\n",
			*replicas, technique, client.Level(), client.Partitions())
	} else {
		fmt.Printf("started %d-replica cluster: technique %s, safety level %s\n", *replicas, technique, client.Level())
	}
	wcfg := gsdb.DefaultWorkloadConfig()
	wcfg.ReadFraction = *readFraction
	wcfg.QueryMinOps = *queryKeys
	wcfg.QueryMaxOps = *queryKeys
	gen := gsdb.NewWorkload(wcfg, *seed)
	sample := stats.NewSample()
	commits, aborts, overridden := 0, 0, 0
	crashAt := *txns / 3
	recoverAt := 2 * *txns / 3

	for i := 0; i < *txns; i++ {
		if *crash && i == crashAt && *replicas >= 3 {
			fmt.Printf("  [txn %d] crashing replica %s\n", i, client.ReplicaID(*replicas-1))
			client.Crash(*replicas - 1)
			for j := 0; j < *replicas-1; j++ {
				client.Suspect(j, *replicas-1)
			}
		}
		if *crash && i == recoverAt && *replicas >= 3 {
			replayed, err := client.Recover(*replicas - 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, "recover:", err)
				os.Exit(1)
			}
			fmt.Printf("  [txn %d] recovered replica %s (state transfer + %d replayed messages)\n",
				i, client.ReplicaID(*replicas-1), replayed)
		}
		delegate := i % (*replicas)
		if client.ReplicaCrashed(delegate) {
			delegate = (delegate + 1) % *replicas
		}
		opts := []gsdb.TxnOption{gsdb.Via(delegate)}
		if overrideLevel != nil && i%10 == 0 {
			opts = append(opts, gsdb.WithSafety(*overrideLevel))
			overridden++
		}
		start := time.Now()
		res, err := client.Execute(ctx, gsdb.RequestFromWorkload(gen.Next(0, delegate)), opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "execute:", err)
			os.Exit(1)
		}
		sample.AddDuration(time.Since(start))
		if res.Committed() {
			commits++
		} else {
			aborts++
		}
	}

	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	consistentErr := client.WaitConsistent(waitCtx)
	cancel()
	total := client.TotalStats()
	fmt.Printf("\nresults:\n")
	fmt.Printf("  transactions: %d committed, %d aborted (abort rate %.1f%%)\n",
		commits, aborts, 100*float64(aborts)/float64(commits+aborts))
	if overridden > 0 {
		fmt.Printf("  per-transaction safety overrides: %d txns at %s (%d very-safe acks on the wire)\n",
			overridden, *mixSafety, total.AcksSent)
	}
	fmt.Printf("  response time: mean %.2f ms, p95 %.2f ms, max %.2f ms\n",
		sample.Mean(), sample.Percentile(95), sample.Max())
	if total.Queries > 0 {
		fmt.Printf("  read-only queries: %d served locally with zero broadcasts\n", total.Queries)
	}
	fmt.Printf("  deliveries across replicas: %d, lazy applies: %d\n", total.Delivered, total.LazyApply)
	fmt.Printf("  all live replicas consistent: %v\n", consistentErr == nil)
	if consistentErr != nil && level == gsdb.Safety1Lazy {
		fmt.Printf("  (lazy replication gives no consistency guarantee under concurrent conflicting updates: %v)\n", consistentErr)
	}
}

// demoPipeline assembles the comparison-run tuning knobs from the flags.
func demoPipeline(batch int, batchDelay time.Duration, applyWorkers int, adaptive bool, delayCap time.Duration, pipelined bool, rotateEvery int) gsdb.Pipeline {
	p := gsdb.Pipe(batch, batchDelay, applyWorkers)
	if adaptive {
		p = gsdb.AdaptivePipe(batch, delayCap, applyWorkers)
	}
	p.Pipelined = pipelined
	p.RotateEvery = rotateEvery
	return p
}
