// Command gsdb-server runs one replica of the replicated database as a
// standalone process.  Start one per replica, give every process the same
// -peers list, and point gsdb.Dial clients at the -client-listen addresses:
//
//	gsdb-server -listen 127.0.0.1:7001 -client-listen 127.0.0.1:8001 \
//	    -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -level group-safe -wal-dir /var/lib/gsdb/r1
//
// -id and -listen are synonyms: a replica's identity IS its peer listen
// address (host:port), and it must appear verbatim in every replica's -peers
// list.  Set either one.  Every flag can also come from the environment
// (GSDB_LISTEN, GSDB_PEERS, ... — the flag name upper-cased, dashes to
// underscores); explicit flags win.
//
// The process exits 0 on SIGINT/SIGTERM after a graceful shutdown: the client
// listener drains, in-flight transactions finish, and the write-ahead logs
// are forced.  A kill -9 is also safe — committed state is rebuilt from the
// WAL on restart and the replica re-joins the group with a fresh incarnation.
//
// See docs/OPERATIONS.md for topology, tuning and failure-handling guidance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/server"
)

func main() {
	var (
		id           = flag.String("id", "", "this replica's peer listen address; must appear in -peers (synonym of -listen)")
		listen       = flag.String("listen", "", "peer listen address (host:port for replica-to-replica traffic; synonym of -id)")
		clientListen = flag.String("client-listen", "", "client listen address (host:port for gsdb.Dial clients)")
		peers        = flag.String("peers", "", "comma-separated peer addresses of ALL replicas, identical on every replica")
		walDir       = flag.String("wal-dir", "", "directory for this replica's write-ahead logs and incarnation counter")
		levelFlag    = flag.String("level", "group-safe", "safety level: 0-safe | 1-safe-lazy | group-safe | group-1-safe | 2-safe | very-safe")
		techFlag     = flag.String("technique", "certification", "replication technique: certification | active | lazy-primary")
		items        = flag.Int("items", 1024, "database size (identical on every replica)")
		execTimeout  = flag.Duration("exec-timeout", 10*time.Second, "per-transaction execution timeout")
		fdInterval   = flag.Duration("fd-interval", 50*time.Millisecond, "failure detector heartbeat interval")
		fdTimeout    = flag.Duration("fd-timeout", 0, "silence after which a peer is suspected (default 4x fd-interval)")
		resync       = flag.Duration("resync-interval", time.Second, "stall interval after which peer state is re-pulled")
		batch        = flag.Int("batch", 1, "atomic broadcast batch size (<=1 disables sender batching)")
		batchDelay   = flag.Duration("batch-delay", time.Millisecond, "max wait for broadcast co-travellers when batching")
		adaptive     = flag.Bool("batch-adaptive", false, "adapt the co-traveller wait to each sender's arrival rate (ignores -batch-delay)")
		delayCap     = flag.Duration("batch-delay-cap", 0, "upper bound on the adaptive co-traveller wait (0: default cap)")
		pipelined    = flag.Bool("pipelined-sequencer", false, "overlap ORDER assignment with DATA reception and coalesce ACK fan-in")
		rotateEvery  = flag.Int("rotate-sequencer-every", 0, "rotate the sequencer role after this many assignments (0: fixed sequencer)")
		partitions   = flag.Int("partitions", 1, "keyspace partitions; a server process hosts one replica of ONE partition's group, so this must stay 1 (see docs/OPERATIONS.md)")
	)
	flag.VisitAll(envDefault)
	flag.Parse()

	peerList := splitPeers(*peers)
	if len(peerList) == 0 {
		fatalf("-peers is required (comma-separated list of every replica's peer address)")
	}
	self := *id
	if self == "" {
		self = *listen
	}
	if self == "" {
		fatalf("-id or -listen is required")
	}
	if *clientListen == "" {
		fatalf("-client-listen is required")
	}
	if *walDir == "" {
		fatalf("-wal-dir is required")
	}
	level, err := gsdb.ParseLevel(*levelFlag)
	if err != nil {
		fatalf("%v", err)
	}
	technique, err := gsdb.ParseTechnique(*techFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if *partitions > 1 {
		fatalf("-partitions=%d: a gsdb-server process hosts one replica of a single partition's group; "+
			"deploy %d independent replica groups (one per partition, each with its own -peers list and "+
			"-wal-dir trees) and shard at the client — see docs/OPERATIONS.md, \"Partitioned keyspace\"",
			*partitions, *partitions)
	}
	if *partitions < 1 {
		fatalf("-partitions must be at least 1")
	}

	srv, err := server.Start(server.Config{
		ID:                   self,
		Members:              peerList,
		ClientAddr:           *clientListen,
		WALDir:               *walDir,
		Technique:            technique,
		Level:                level,
		Items:                *items,
		ExecTimeout:          *execTimeout,
		HeartbeatInterval:    *fdInterval,
		SuspectTimeout:       *fdTimeout,
		ResyncInterval:       *resync,
		BatchSize:            *batch,
		BatchDelay:           *batchDelay,
		BatchAdaptive:        *adaptive,
		BatchDelayCap:        *delayCap,
		PipelinedSequencer:   *pipelined,
		RotateSequencerEvery: *rotateEvery,
	})
	if err != nil {
		fatalf("start: %v", err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "gsdb-server: received %v, shutting down\n", sig)
	if err := srv.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// envDefault seeds a flag's default from GSDB_<NAME> when the variable is
// set, so containerised deployments can configure without argv.
func envDefault(f *flag.Flag) {
	key := "GSDB_" + strings.ToUpper(strings.ReplaceAll(f.Name, "-", "_"))
	if v, ok := os.LookupEnv(key); ok {
		f.DefValue = v
		f.Value.Set(v)
	}
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gsdb-server: "+format+"\n", args...)
	os.Exit(1)
}
