package main

import "groupsafe/gsdb/experiments"

// coreScalingPoints runs the Sect. 7 Monte-Carlo model with its default
// parameters (kept in a separate function so main.go stays flag-focused).
func coreScalingPoints() []experiments.ScalingPoint {
	return experiments.RunSection7Scaling(experiments.ScalingConfig{})
}
