// Command gsdb-sim runs the performance experiments of the paper's Sect. 6 on
// the discrete-event simulator: the Fig. 9 response-time-versus-load sweep,
// the Sect. 7 scaling comparison, and the Table 4 parameter listing.
//
// Usage:
//
//	gsdb-sim -experiment fig9    [-duration 60s] [-loads 20,24,...,40]
//	gsdb-sim -technique active|lazy-primary|certification
//	gsdb-sim -experiment scaling
//	gsdb-sim -print-config
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"groupsafe/gsdb"
	"groupsafe/gsdb/sim"
)

func main() {
	os.Exit(run())
}

// run carries the real main body and returns the process exit code, so the
// CPU-profile teardown in its defer also runs on error exits (a bare
// os.Exit would skip it and leave a truncated profile).
func run() int {
	experiment := flag.String("experiment", "fig9", "experiment to run: fig9 | scaling")
	techniqueFlag := flag.String("technique", "certification", "replication technique to simulate: certification | active | lazy-primary")
	duration := flag.Duration("duration", 60*time.Second, "simulated duration per data point")
	loadsFlag := flag.String("loads", "", "comma-separated load points in tps (default 20..40)")
	levelsFlag := flag.String("levels", "", "comma-separated levels: group-safe,1-safe-lazy,group-1-safe,2-safe,very-safe,0-safe")
	printConfig := flag.Bool("print-config", false, "print the Table 4 simulator parameters and exit")
	seed := flag.Int64("seed", 1, "random seed")
	batch := flag.Int("batch", 1, "atomic broadcast batch size (<=1 disables batching)")
	batchDelay := flag.Duration("batch-delay", time.Millisecond, "max wait for broadcast co-travellers when batching")
	adaptive := flag.Bool("batch-adaptive", false, "adapt the co-traveller wait to the offered load (ignores -batch-delay)")
	delayCap := flag.Duration("batch-delay-cap", 0, "upper bound on the adaptive co-traveller wait (0: default cap)")
	applyWorkers := flag.Int("apply-workers", 0, "concurrent write-set installs per server (0: one per disk)")
	partitions := flag.Int("partitions", 1, "hash partitions of the keyspace, each with its own total order (certification technique only; 1: single global order)")
	readFraction := flag.Float64("read-fraction", 0, "fraction of transactions that are pure read-only queries (0: Table 4 mix)")
	queryKeys := flag.Int("query-keys", 0, "keys read per query transaction (0: transaction-length bounds)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create cpu profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := sim.DefaultConfig()
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.BatchSize = *batch
	cfg.BatchDelay = *batchDelay
	cfg.ApplyWorkers = *applyWorkers
	if *adaptive {
		cfg.Pipeline = gsdb.AdaptivePipe(*batch, *delayCap, *applyWorkers)
	}
	cfg.Partitions = *partitions
	cfg.ReadFraction = *readFraction
	cfg.QueryMinOps = *queryKeys
	cfg.QueryMaxOps = *queryKeys
	technique, err := gsdb.ParseTechnique(*techniqueFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg.Technique = technique

	if *printConfig {
		printTable4(cfg)
		return 0
	}

	switch *experiment {
	case "fig9":
		return runFig9(cfg, *loadsFlag, *levelsFlag)
	case "scaling":
		runScaling()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		return 2
	}
}

func printTable4(cfg sim.Config) {
	fmt.Println("Simulator parameters (Table 4 of the paper):")
	fmt.Printf("  Number of items in the database      %d\n", cfg.Items)
	fmt.Printf("  Number of servers                    %d\n", cfg.Servers)
	fmt.Printf("  Number of clients per server         %d\n", cfg.ClientsPerServer)
	fmt.Printf("  Disks per server                     %d\n", cfg.DisksPerServer)
	fmt.Printf("  CPUs per server                      %d\n", cfg.CPUsPerServer)
	fmt.Printf("  Transaction length                   %d - %d operations\n", cfg.MinOps, cfg.MaxOps)
	fmt.Printf("  Probability an operation is a write  %.0f%%\n", 100*cfg.WriteProb)
	fmt.Printf("  Buffer hit ratio                     %.0f%%\n", 100*cfg.BufferHitRatio)
	fmt.Printf("  Time for a read/write                %v - %v\n", cfg.DiskAccessMin, cfg.DiskAccessMax)
	fmt.Printf("  CPU time used for an I/O operation   %v\n", cfg.CPUPerIO)
	fmt.Printf("  Time for a message on the network    %v\n", cfg.NetworkDelay)
	fmt.Printf("  CPU time for a network operation     %v\n", cfg.CPUPerNetworkOp)
	fmt.Printf("  Simulated duration per data point    %v\n", cfg.Duration)
}

func runFig9(cfg sim.Config, loadsFlag, levelsFlag string) int {
	loads := sim.Figure9Loads()
	if loadsFlag != "" {
		loads = nil
		for _, tok := range strings.Split(loadsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad load %q: %v\n", tok, err)
				return 2
			}
			loads = append(loads, v)
		}
	}
	// nil lets RunFigure9 pick the default level set for the configured
	// technique (the Fig. 9 trio for certification, the canonical level for
	// active / lazy-primary).
	var levels []gsdb.SafetyLevel
	if levelsFlag != "" {
		for _, tok := range strings.Split(levelsFlag, ",") {
			level, err := gsdb.ParseLevel(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			levels = append(levels, level)
		}
	}

	fmt.Printf("Figure 9 reproduction: response time vs load (%d servers, Table 4 workload, %s technique)\n\n", cfg.Servers, cfg.Technique)
	results, err := sim.RunFigure9(cfg, levels, loads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(sim.FormatFigure9(results))
	// The group-safe-vs-lazy crossover only exists in the certification
	// technique's multi-level sweep.
	if cfg.Technique == gsdb.TechCertification {
		if cross := sim.CrossoverLoad(results, gsdb.GroupSafe, gsdb.Safety1Lazy); cross > 0 {
			fmt.Printf("group-safe overtakes lazy replication at %.0f tps (paper: ~38 tps)\n", cross)
		} else {
			fmt.Println("group-safe stayed faster than lazy replication over the whole sweep")
		}
	}
	return 0
}

func runScaling() {
	fmt.Println("Section 7: probability of an ACID violation vs number of servers")
	fmt.Printf("%-10s  %-22s  %-22s\n", "servers", "lazy (grows with n)", "group-safe (shrinks)")
	for _, p := range coreScalingPoints() {
		fmt.Printf("%-10d  %-22.4f  %-22.4f\n", p.Servers, p.LazyViolationProb, p.GroupSafeViolateProb)
	}
}
