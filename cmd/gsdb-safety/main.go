// Command gsdb-safety runs the safety experiments of the paper on the real
// replication stack (in-memory network, crash injection):
//
//	gsdb-safety -table 1            # Table 1: safety level classification
//	gsdb-safety -table 2            # Table 2: tolerated crashes (operational)
//	gsdb-safety -table 3            # Table 3: group-safe vs group-1-safe
//	gsdb-safety -scenario fig5      # Fig. 5: lost transaction, classical abcast
//	gsdb-safety -scenario fig7      # Fig. 7: recovery with end-to-end abcast
//	gsdb-safety -scenario trace     # Fig. 2 vs Fig. 8 response-time breakdown
//	gsdb-safety -scenario diskvsnet # Sect. 6: disk force vs atomic broadcast
//	gsdb-safety -all                # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"groupsafe/gsdb/experiments"
)

func main() {
	table := flag.Int("table", 0, "paper table to reproduce (1, 2 or 3)")
	scenario := flag.String("scenario", "", "scenario to run: fig5 | fig7 | trace | diskvsnet")
	all := flag.Bool("all", false, "run every table and scenario")
	servers := flag.Int("servers", 9, "number of servers for Table 1/2")
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		ran = true
		printTable1(*servers)
	}
	if *all || *table == 2 {
		ran = true
		if err := printTable2(); err != nil {
			fail(err)
		}
	}
	if *all || *table == 3 {
		ran = true
		if err := printTable3(); err != nil {
			fail(err)
		}
	}
	if *all || *scenario == "fig5" {
		ran = true
		res, err := experiments.RunFigure5()
		if err != nil {
			fail(err)
		}
		fmt.Println("Figure 5 — classical atomic broadcast, total failure, delegate never recovers:")
		fmt.Println("  " + res.String())
		fmt.Println("  => the acknowledged transaction is LOST: the technique is not 2-safe")
		fmt.Println()
	}
	if *all || *scenario == "fig7" {
		ran = true
		res, err := experiments.RunFigure7()
		if err != nil {
			fail(err)
		}
		fmt.Println("Figure 7 — end-to-end atomic broadcast, same crash schedule:")
		fmt.Println("  " + res.String())
		fmt.Println("  => the logged message is replayed after recovery: the technique is 2-safe")
		fmt.Println()
	}
	if *all || *scenario == "trace" {
		ran = true
		res, err := experiments.RunFig2VsFig8Trace(8*time.Millisecond, 70*time.Microsecond, 5)
		if err != nil {
			fail(err)
		}
		fmt.Println("Figure 2 vs Figure 8 — single-transaction response time breakdown:")
		fmt.Printf("  disk force %v, network latency %v\n", res.DiskSyncDelay, res.NetworkLatency)
		fmt.Printf("  group-1-safe (Fig. 2) response: %v\n", res.Group1SafeResponse)
		fmt.Printf("  group-safe   (Fig. 8) response: %v\n", res.GroupSafeResponse)
		fmt.Printf("  savings (≈ disk force taken off the response path): %v\n", res.ResponseTimeSavings)
		fmt.Println()
	}
	if *all || *scenario == "diskvsnet" {
		ran = true
		res, err := experiments.RunDiskVsBroadcast(8*time.Millisecond, 70*time.Microsecond, 9)
		if err != nil {
			fail(err)
		}
		fmt.Println("Section 6 claim — forcing a log vs performing an atomic broadcast:")
		fmt.Printf("  disk force:        %v\n", res.DiskForce)
		fmt.Printf("  atomic broadcast:  %v\n", res.AtomicBroadcast)
		fmt.Printf("  ratio:             %.1fx (broadcast cheaper: %v)\n", res.Ratio, res.BroadcastCheaper)
		fmt.Println()
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1(servers int) {
	fmt.Printf("Table 1/2 — safety level classification (n = %d servers):\n", servers)
	fmt.Printf("  %-14s %-18s %-16s %-18s\n", "level", "delivered on", "logged on", "tolerated crashes")
	for _, row := range experiments.RunTable1(servers) {
		fmt.Printf("  %-14s %-18s %-16s %-18s\n", row.Level, row.GuaranteedDeliverd, row.GuaranteedLogged, row.ToleratedCrashes)
	}
	fmt.Println()
}

func printTable2() error {
	fmt.Println("Table 2 — operational crash-tolerance check (acknowledged transaction lost?):")
	rows, err := experiments.RunTable2(3)
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s %-18s %-18s %-24s\n", "level", "delegate crash", "minority crash", "total failure (Sd gone)")
	for _, row := range rows {
		fmt.Printf("  %-14s %-18v %-18v %-24v\n", row.Level, row.LostAfterDelegate, row.LostAfterMinority, row.LostAfterTotalFail)
	}
	fmt.Println()
	return nil
}

func printTable3() error {
	fmt.Println("Table 3 — group-safe vs group-1-safe (acknowledged transaction lost?):")
	rows, err := experiments.RunTable3()
	if err != nil {
		return err
	}
	fmt.Printf("  %-42s %-14s %-14s\n", "condition", "group-safe", "group-1-safe")
	for _, row := range rows {
		fmt.Printf("  %-42s %-14v %-14v\n", row.Condition, row.GroupSafeLost, row.Group1SafeLost)
	}
	fmt.Println()
	return nil
}
